"""Configuration validation (repro.config)."""

import pytest

from repro.config import (
    HPEConfig,
    MHPEConfig,
    PageWalkCacheConfig,
    PatternBufferConfig,
    SimConfig,
    SMConfig,
    TLBConfig,
    TranslationConfig,
    UVMConfig,
    WalkerConfig,
)
from repro.errors import ConfigError


class TestTLBConfig:
    def test_table1_l1_defaults(self):
        cfg = TLBConfig()
        assert cfg.entries == 128
        assert cfg.hit_latency == 1
        assert cfg.num_sets == 1  # fully associative

    def test_table1_l2(self):
        cfg = TLBConfig(entries=512, associativity=16, hit_latency=10)
        assert cfg.num_sets == 32

    def test_rejects_nonpositive_entries(self):
        with pytest.raises(ConfigError):
            TLBConfig(entries=0)

    def test_rejects_non_dividing_associativity(self):
        with pytest.raises(ConfigError):
            TLBConfig(entries=128, associativity=7)

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigError):
            TLBConfig(hit_latency=-1)


class TestPageWalkCacheConfig:
    def test_table1_defaults(self):
        cfg = PageWalkCacheConfig()
        assert cfg.size_bytes == 8 * 1024
        assert cfg.entries == 1024
        assert cfg.latency == 10

    def test_rejects_zero_size(self):
        with pytest.raises(ConfigError):
            PageWalkCacheConfig(size_bytes=0)


class TestWalkerConfig:
    def test_table1_defaults(self):
        cfg = WalkerConfig()
        assert cfg.concurrent_walks == 64
        assert cfg.levels == 4

    def test_rejects_zero_walks(self):
        with pytest.raises(ConfigError):
            WalkerConfig(concurrent_walks=0)

    def test_rejects_zero_levels(self):
        with pytest.raises(ConfigError):
            WalkerConfig(levels=0)


class TestSMConfig:
    def test_table1_defaults(self):
        cfg = SMConfig()
        assert cfg.num_sms == 28

    def test_rejects_zero_sms(self):
        with pytest.raises(ConfigError):
            SMConfig(num_sms=0)

    def test_rejects_zero_outstanding(self):
        with pytest.raises(ConfigError):
            SMConfig(max_outstanding_faults=0)

    def test_rejects_zero_burst(self):
        with pytest.raises(ConfigError):
            SMConfig(burst_length=0)


class TestUVMConfig:
    def test_paper_geometry(self):
        cfg = UVMConfig()
        assert cfg.pages_per_chunk == 16
        assert cfg.interval_pages == 64
        assert cfg.chunks_per_interval == 4
        assert cfg.fault_latency_cycles == 28000

    def test_interval_must_be_chunk_multiple(self):
        with pytest.raises(ConfigError):
            UVMConfig(interval_pages=50)

    def test_rejects_zero_parallelism(self):
        with pytest.raises(ConfigError):
            UVMConfig(fault_parallelism=0)

    def test_rejects_bad_write_fraction(self):
        with pytest.raises(ConfigError):
            UVMConfig(write_fraction=1.5)

    def test_page_transfer_cycles_positive(self):
        assert UVMConfig().page_transfer_cycles > 0


class TestMHPEConfig:
    def test_paper_thresholds(self):
        cfg = MHPEConfig()
        assert (cfg.t1, cfg.t2, cfg.t3) == (32, 40, 32)
        assert (cfg.init_lo, cfg.init_hi) == (2, 8)

    def test_rejects_inverted_init_range(self):
        with pytest.raises(ConfigError):
            MHPEConfig(init_lo=9, init_hi=8)

    def test_rejects_nonpositive_thresholds(self):
        with pytest.raises(ConfigError):
            MHPEConfig(t1=0)


class TestPatternBufferConfig:
    def test_paper_defaults(self):
        cfg = PatternBufferConfig()
        assert cfg.min_untouch_level == 8
        assert cfg.deletion_scheme == 2  # the paper adopts Scheme-2
        assert cfg.lru_only

    def test_rejects_unknown_scheme(self):
        with pytest.raises(ConfigError):
            PatternBufferConfig(deletion_scheme=3)

    def test_rejects_negative_min_untouch(self):
        with pytest.raises(ConfigError):
            PatternBufferConfig(min_untouch_level=-1)


class TestSimConfig:
    def test_with_replaces_field(self):
        cfg = SimConfig()
        cfg2 = cfg.with_(seed=99)
        assert cfg2.seed == 99
        assert cfg.seed == 0  # original untouched (frozen dataclass)

    def test_nested_defaults_compose(self):
        cfg = SimConfig()
        assert cfg.translation.l2.entries == 512
        assert cfg.uvm.interconnect_gbps == 16.0
        assert isinstance(cfg.hpe, HPEConfig)
