"""Shared helpers for policy/prefetcher unit tests."""

from __future__ import annotations

import random
from typing import List

from repro.config import SimConfig
from repro.engine.stats import SimStats
from repro.memsim.chunk_chain import ChunkChain, ChunkEntry
from repro.policies.base import EvictionPolicy, PolicyContext
from repro.prefetch.base import PrefetchContext, Prefetcher


class IntervalClock:
    """Mutable interval counter satisfying the IntervalSource protocol."""

    def __init__(self, value: int = 0):
        self.value = value

    @property
    def current_interval(self) -> int:
        return self.value


def attach_policy(
    policy: EvictionPolicy,
    config: SimConfig = None,
    seed: int = 0,
    interval: IntervalClock = None,
):
    """Attach a policy to a fresh chain/stats; returns (chain, stats, clock)."""
    chain = ChunkChain()
    stats = SimStats()
    clock = interval or IntervalClock()
    policy.attach(
        PolicyContext(
            chain=chain,
            stats=stats,
            config=config or SimConfig(),
            rng=random.Random(seed),
            clock=clock,
        )
    )
    return chain, stats, clock


def attach_prefetcher(prefetcher: Prefetcher, config: SimConfig = None) -> SimStats:
    stats = SimStats()
    prefetcher.attach(PrefetchContext(config=config or SimConfig(), stats=stats))
    return stats


def full_entry(chunk_id: int, interval: int = 0, touched: int = 0xFFFF) -> ChunkEntry:
    """A fully resident chunk entry with the given touched mask."""
    entry = ChunkEntry(chunk_id, interval)
    entry.resident_mask = 0xFFFF
    entry.touched_mask = touched
    return entry


def populate(policy: EvictionPolicy, chunk_ids: List[int], interval: int = 0,
             touched: int = 0xFFFF) -> List[ChunkEntry]:
    """Insert fully resident chunks via the policy's own insert hook."""
    entries = []
    for cid in chunk_ids:
        entry = full_entry(cid, interval, touched)
        policy.insert_chunk(entry, time=0)
        entries.append(entry)
    return entries


def never_skip(vpn: int) -> bool:
    return False
