"""Disabled / locality / tree prefetchers (repro.prefetch)."""

import pytest

from repro.errors import ConfigError
from repro.prefetch.disabled import DisabledPrefetcher
from repro.prefetch.locality import LocalityPrefetcher
from repro.prefetch.tree_neighborhood import TreeNeighborhoodPrefetcher

from helpers import attach_prefetcher, never_skip


class TestDisabled:
    def test_migrates_only_demand_page(self):
        pf = DisabledPrefetcher()
        attach_prefetcher(pf)
        assert pf.pages_to_migrate(100, False, never_skip) == [100]
        assert pf.pages_to_migrate(100, True, never_skip) == [100]

    def test_skipped_demand_page_yields_empty(self):
        pf = DisabledPrefetcher()
        attach_prefetcher(pf)
        assert pf.pages_to_migrate(100, False, lambda v: True) == []


class TestLocality:
    def test_prefetches_whole_chunk(self):
        pf = LocalityPrefetcher("continue")
        attach_prefetcher(pf)
        pages = pf.pages_to_migrate(35, False, never_skip)
        assert pages[0] == 35  # demand page first
        assert sorted(pages) == list(range(32, 48))

    def test_skip_predicate_respected(self):
        pf = LocalityPrefetcher("continue")
        attach_prefetcher(pf)
        resident = {32, 33}
        pages = pf.pages_to_migrate(35, False, lambda v: v in resident)
        assert 32 not in pages and 33 not in pages
        assert len(pages) == 14

    def test_continue_mode_prefetches_when_full(self):
        pf = LocalityPrefetcher("continue")
        attach_prefetcher(pf)
        assert len(pf.pages_to_migrate(35, True, never_skip)) == 16

    def test_stop_mode_demand_only_when_full(self):
        pf = LocalityPrefetcher("stop")
        attach_prefetcher(pf)
        assert pf.pages_to_migrate(35, True, never_skip) == [35]
        # Before memory fills it still prefetches.
        assert len(pf.pages_to_migrate(35, False, never_skip)) == 16

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigError):
            LocalityPrefetcher("sometimes")

    def test_names(self):
        assert LocalityPrefetcher("continue").name == "locality/continue"
        assert LocalityPrefetcher("stop").name == "locality/stop"


class TestTreeNeighborhood:
    def test_faulted_chunk_always_included(self):
        pf = TreeNeighborhoodPrefetcher()
        attach_prefetcher(pf)
        pages = pf.pages_to_migrate(35, False, never_skip)
        assert set(range(32, 48)) <= set(pages)
        assert pages[0] == 35

    def test_promotes_to_parent_when_sibling_resident(self):
        pf = TreeNeighborhoodPrefetcher()
        attach_prefetcher(pf)
        # Sibling chunk [48,64) fully resident: migrating [32,48) completes
        # the 32-page node, which reaches half of the 64-page grandparent
        # [0,64) — at the >= threshold its other half [0,32) joins too,
        # producing the geometric growth the CUDA driver exhibits.
        resident = set(range(48, 64))
        pages = pf.pages_to_migrate(35, False, lambda v: v in resident)
        assert set(range(32, 48)) <= set(pages)
        assert set(range(0, 32)) <= set(pages)

    def test_expansion_stops_below_half(self):
        pf = TreeNeighborhoodPrefetcher()
        attach_prefetcher(pf)
        # No siblings resident: the faulted chunk is 16/32 of its parent
        # (at threshold -> parent joins), parent is 32/64 (joins), ...; cap
        # the cascade with a smaller region to observe the stop condition.
        pf2 = TreeNeighborhoodPrefetcher(occupancy_threshold=0.9)
        attach_prefetcher(pf2)
        pages = pf2.pages_to_migrate(35, False, never_skip)
        # 16/32 = 50% < 90%: no expansion beyond the faulted chunk.
        assert set(pages) == set(range(32, 48))

    def test_stop_on_full(self):
        pf = TreeNeighborhoodPrefetcher(on_full="stop")
        attach_prefetcher(pf)
        assert pf.pages_to_migrate(35, True, never_skip) == [35]

    def test_region_bound(self):
        pf = TreeNeighborhoodPrefetcher(region_pages=32)
        attach_prefetcher(pf)
        resident = set(range(0, 32))  # everything below
        pages = pf.pages_to_migrate(35, False, lambda v: v in resident)
        # Region is [32, 64): expansion never crosses into [0, 32).
        assert all(32 <= p < 64 for p in pages)

    def test_invalid_region_rejected(self):
        with pytest.raises(ConfigError):
            TreeNeighborhoodPrefetcher(region_pages=100)  # not a power of 2
        with pytest.raises(ConfigError):
            TreeNeighborhoodPrefetcher(occupancy_threshold=0.0)
