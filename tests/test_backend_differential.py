"""Differential proof that ``backend="array"`` is ``backend="object"``.

The array fast path (``repro.memsim.array_backend`` + the fused hot loops
in ``repro.engine.sm`` / ``repro.memsim.system``) must be *behavior
preserving*: same results, same traces, same metrics, same crashes.  These
tests run the public :class:`~repro.engine.simulator.Simulator` under both
``SimConfig.backend`` values over a policy × oversubscription × workload
matrix (>= 24 cases) and require **byte-identical** pickled
``SimulationResult``s and byte-identical JSONL trace files.

The object backend is the oracle.  Nothing is monkeypatched: backend
selection is the production code path (``SimConfig.with_(backend=...)``),
so any divergence is a real behavioral difference in the fast path.
"""

from __future__ import annotations

import dataclasses
import pickle

import pytest

from repro.config import SimConfig, SMConfig
from repro.engine.simulator import Simulator
from repro.harness.baselines import build_setup
from repro.harness.cache import _PICKLE_PROTOCOL
from repro.obs import Observability, write_jsonl
from repro.workloads.suite import make_workload

#: The paper's policy families: LRU (baseline), HPE, MHPE alone, full CPPE.
SETUPS = ["baseline", "hpe", "mhpe-naive", "cppe"]
RATES = [None, 0.75, 0.5]
#: One app per regularity regime: NW (strided thrasher, pattern-prefetch
#: target), BFS (irregular).
APPS = ["NW", "BFS"]
SCALE = 0.25


def _run(app, setup, rate, backend, obs=None, config=None):
    """One simulation through the public Simulator on the given backend."""
    base = config or SimConfig(sm=SMConfig(num_sms=4))
    workload = make_workload(app, scale=SCALE)
    policy, prefetcher = build_setup(setup)
    sim = Simulator(
        workload,
        policy=policy,
        prefetcher=prefetcher,
        oversubscription=rate,
        config=base.with_(backend=backend),
        obs=obs,
    )
    return sim.run()


def _bytes(result) -> bytes:
    return pickle.dumps(result, protocol=_PICKLE_PROTOCOL)


class TestByteIdenticalResults:
    # 4 setups x 3 rates x 2 apps = 24 untraced matrix cases.
    @pytest.mark.parametrize("setup", SETUPS)
    @pytest.mark.parametrize("rate", RATES)
    @pytest.mark.parametrize("app", APPS)
    def test_result_bytes_match_oracle(self, app, setup, rate):
        arr = _run(app, setup, rate, "array")
        obj = _run(app, setup, rate, "object")
        assert _bytes(arr) == _bytes(obj)

    def test_crash_outcome_matches_oracle(self):
        # The thrashing-crash budget must trip at the exact same eviction on
        # both backends (the array eviction path is a separate code path).
        base = SimConfig(sm=SMConfig(num_sms=4))
        config = base.with_(
            uvm=dataclasses.replace(base.uvm, crash_eviction_budget_factor=0.5)
        )
        arr = _run("NW", "baseline", 0.5, "array", config=config)
        obj = _run("NW", "baseline", 0.5, "object", config=config)
        assert arr.crashed and obj.crashed
        assert _bytes(arr) == _bytes(obj)


class TestByteIdenticalTraces:
    # Traced variants: the fused fast paths skip the trace-emit call sites
    # only behind `trace.enabled` guards — identical events must come out
    # when tracing is on.
    @pytest.mark.parametrize("setup", ["baseline", "cppe"])
    @pytest.mark.parametrize("app", ["NW", "BFS"])
    def test_jsonl_trace_bytes_match_oracle(self, setup, app, tmp_path):
        obs_a = Observability.enabled_()
        _run(app, setup, 0.5, "array", obs=obs_a)
        obs_b = Observability.enabled_()
        _run(app, setup, 0.5, "object", obs=obs_b)
        arr_path = write_jsonl(obs_a.tracer.events, tmp_path / "array.jsonl")
        obj_path = write_jsonl(obs_b.tracer.events, tmp_path / "object.jsonl")
        arr_bytes = arr_path.read_bytes()
        assert arr_bytes == obj_path.read_bytes()
        assert arr_bytes  # a traced oversubscribed run is never empty

    def test_metrics_snapshot_matches_oracle(self):
        # Counter values are flushed from hoisted locals in the fast SM
        # loop; names, registration order and values must all survive.
        obs_a = Observability.enabled_()
        _run("NW", "cppe", 0.5, "array", obs=obs_a)
        obs_b = Observability.enabled_()
        _run("NW", "cppe", 0.5, "object", obs=obs_b)
        assert obs_a.metrics.snapshot() == obs_b.metrics.snapshot()


class TestMultiInstanceBackend:
    def test_sharded_run_matches_oracle(self):
        # The sharded multi-GPU scenario builds its page tables through the
        # same backend-aware factory (`build_page_table`).
        from repro.engine.multi import ShardedSimulator

        results = []
        for backend in ("array", "object"):
            workload = make_workload("NW", scale=SCALE)
            pairs = [build_setup("cppe") for _ in range(2)]
            results.append(
                ShardedSimulator(
                    workload,
                    policies=[p for p, _ in pairs],
                    prefetchers=[pf for _, pf in pairs],
                    oversubscription=0.5,
                    config=SimConfig(sm=SMConfig(num_sms=4), backend=backend),
                ).run()
            )
        assert _bytes(results[0]) == _bytes(results[1])
