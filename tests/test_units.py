"""Unit conversions (repro.units)."""

import pytest

from repro.units import (
    CHUNK_SIZE_BYTES,
    DEFAULT_CLOCK_HZ,
    PAGES_PER_CHUNK,
    PAGE_SIZE_BYTES,
    cycles_to_ms,
    cycles_to_us,
    mb_to_pages,
    page_transfer_cycles,
    transfer_cycles,
    us_to_cycles,
)


class TestConstants:
    def test_page_size_is_4kb(self):
        assert PAGE_SIZE_BYTES == 4096

    def test_chunk_is_16_pages(self):
        assert PAGES_PER_CHUNK == 16
        assert CHUNK_SIZE_BYTES == 64 * 1024

    def test_clock_matches_table1(self):
        assert DEFAULT_CLOCK_HZ == pytest.approx(1.4e9)


class TestTimeConversions:
    def test_paper_fault_latency_is_28000_cycles(self):
        # 20 us at 1.4 GHz — the Table I fault service time.
        assert us_to_cycles(20.0) == 28000

    def test_us_roundtrip(self):
        assert cycles_to_us(us_to_cycles(13.5)) == pytest.approx(13.5, rel=1e-6)

    def test_ms_conversion(self):
        assert cycles_to_ms(1.4e9) == pytest.approx(1000.0)

    def test_zero(self):
        assert us_to_cycles(0) == 0
        assert cycles_to_us(0) == 0.0


class TestTransferCycles:
    def test_page_transfer_at_16gbps_is_350_cycles(self):
        # 4 KB / 16 GB/s = 0.25 us = 350 cycles at 1.4 GHz (DESIGN.md).
        assert page_transfer_cycles(16.0) == 358  # 4096/16e9*1.4e9 = 358.4

    def test_transfer_scales_linearly(self):
        one = transfer_cycles(4096, 16.0)
        ten = transfer_cycles(40960, 16.0)
        assert ten == pytest.approx(10 * one, abs=5)

    def test_zero_bytes(self):
        assert transfer_cycles(0, 16.0) == 0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            transfer_cycles(-1, 16.0)

    def test_nonpositive_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            transfer_cycles(4096, 0.0)
        with pytest.raises(ValueError):
            transfer_cycles(4096, -2.0)

    def test_higher_bandwidth_is_faster(self):
        assert transfer_cycles(1 << 20, 32.0) < transfer_cycles(1 << 20, 16.0)


class TestMbToPages:
    def test_one_mb(self):
        assert mb_to_pages(1) == 256

    def test_fractional(self):
        assert mb_to_pages(5.6) == round(5.6 * 256)

    def test_paper_average_footprint(self):
        # The suite's average footprint is 45 MB -> 11520 native pages.
        assert mb_to_pages(45) == 11520
