"""Workload container and SM distribution (repro.workloads.base)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.base import Workload, block_split, interleave_split

from conftest import make_simple_workload


class TestSplits:
    def test_interleave_round_robin(self):
        arr = np.arange(10)
        parts = interleave_split(arr, 3)
        assert list(parts[0]) == [0, 3, 6, 9]
        assert list(parts[1]) == [1, 4, 7]
        assert list(parts[2]) == [2, 5, 8]

    def test_block_contiguous(self):
        arr = np.arange(10)
        parts = block_split(arr, 3)
        assert [len(p) for p in parts] == [4, 3, 3]
        assert list(np.concatenate(parts)) == list(range(10))

    def test_splits_preserve_all_elements(self):
        arr = np.arange(101)
        for split in (interleave_split, block_split):
            parts = split(arr, 7)
            assert sorted(np.concatenate(parts)) == list(range(101))

    def test_invalid_sm_count(self):
        with pytest.raises(WorkloadError):
            interleave_split(np.arange(3), 0)
        with pytest.raises(WorkloadError):
            block_split(np.arange(3), -1)


class TestWorkloadValidation:
    def test_valid_workload(self):
        wl = make_simple_workload()
        assert wl.num_accesses == 768
        assert wl.footprint_chunks == 16
        assert wl.unique_pages_touched == 256

    def test_rejects_out_of_range_access(self):
        with pytest.raises(WorkloadError):
            make_simple_workload(footprint=10, accesses=[0, 10])

    def test_rejects_negative_access(self):
        with pytest.raises(WorkloadError):
            make_simple_workload(footprint=10, accesses=[-1])

    def test_rejects_empty_trace(self):
        with pytest.raises(WorkloadError):
            make_simple_workload(footprint=10, accesses=[])

    def test_rejects_bad_distribution(self):
        with pytest.raises(WorkloadError):
            make_simple_workload(distribution="zigzag")

    def test_rejects_writes_shape_mismatch(self):
        with pytest.raises(WorkloadError):
            Workload(
                name="w",
                pattern_type="I",
                footprint_pages=10,
                accesses=np.array([1, 2]),
                writes=np.array([True]),
            )


class TestPerSMTraces:
    def test_traces_rebased_to_base_vpn(self):
        wl = make_simple_workload()
        traces = wl.per_sm_traces(4)
        assert len(traces) == 4
        assert min(t.min() for t, _ in traces) >= wl.base_vpn

    def test_block_distribution(self):
        wl = make_simple_workload(distribution="block")
        traces = wl.per_sm_traces(4)
        # Block split keeps each SM's trace contiguous in time.
        first = traces[0][0] - wl.base_vpn
        assert list(first) == list(wl.accesses[: len(first)])

    def test_writes_split_alongside(self):
        wl = make_simple_workload()
        wl.writes = np.zeros(wl.num_accesses, dtype=bool)
        wl.writes[0] = True
        traces = wl.per_sm_traces(4)
        assert traces[0][1][0]  # first element went to SM0
        assert sum(w.sum() for _, w in traces) == 1


class TestCapacity:
    def test_unlimited_capacity_exceeds_footprint(self):
        wl = make_simple_workload()
        assert wl.capacity_for(None) > wl.footprint_pages

    def test_oversubscription_rates(self):
        wl = make_simple_workload(footprint=1000)
        assert wl.capacity_for(0.75) == 750
        assert wl.capacity_for(0.5) == 500

    def test_minimum_four_chunks(self):
        wl = make_simple_workload(footprint=80)
        assert wl.capacity_for(0.5) == 64

    def test_invalid_rate_rejected(self):
        wl = make_simple_workload()
        with pytest.raises(WorkloadError):
            wl.capacity_for(0.0)
        with pytest.raises(WorkloadError):
            wl.capacity_for(1.5)
