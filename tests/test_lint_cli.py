"""The `repro lint` CLI surface: exit codes, JSON schema, catalogue."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.devtools.findings import JSON_SCHEMA_VERSION

REPO = Path(__file__).resolve().parent.parent
CORPUS = REPO / "tests" / "lint_corpus"

#: A corpus file that is genuinely bad (not the suppression demo).
BAD_SNIPPET = CORPUS / "det_wallclock.py"
CLEAN_SNIPPET = CORPUS / "suppressed_wallclock.py"


class TestParser:
    def test_lint_defaults(self):
        args = build_parser().parse_args(["lint"])
        assert args.paths == ["src"]
        assert not args.json

    def test_lint_paths_and_flags(self):
        args = build_parser().parse_args(["lint", "a.py", "b.py", "--json"])
        assert args.paths == ["a.py", "b.py"]
        assert args.json
        assert not args.deep
        assert args.callgraph_cache is None

    def test_lint_deep_flags(self):
        args = build_parser().parse_args(
            ["lint", "--deep", "--callgraph-cache", ".cache/cg.json"]
        )
        assert args.deep
        assert args.callgraph_cache == ".cache/cg.json"


class TestExitCodes:
    def test_clean_file_exits_zero(self):
        assert main(["lint", str(CLEAN_SNIPPET)]) == 0

    def test_findings_exit_one(self):
        assert main(["lint", str(BAD_SNIPPET)]) == 1

    @pytest.mark.parametrize(
        "path", sorted(CORPUS.glob("*.py")), ids=lambda p: p.stem
    )
    def test_every_bad_corpus_snippet_exits_nonzero(self, path):
        # --deep so the whole-program snippets (taint_*/reach_*) fire too;
        # it is a strict superset of the cheap pass for the others.
        expects_findings = bool(
            path.read_text().splitlines()[0].split(":", 1)[1].strip()
        )
        code = main(["lint", "--deep", str(path)])
        assert code == (1 if expects_findings else 0)

    def test_missing_path_is_usage_error(self, capsys):
        assert main(["lint", "definitely/not/a/path.py"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_repo_src_is_clean(self):
        assert main(["lint", str(REPO / "src")]) == 0

    def test_repo_src_is_deep_clean(self):
        # The acceptance gate for --deep: the shipped tree has no taint or
        # reachability findings (pre-existing ones were fixed or allowlisted).
        assert main(["lint", "--deep", str(REPO / "src")]) == 0


class TestJsonOutput:
    def test_schema(self, capsys):
        assert main(["lint", "--json", str(BAD_SNIPPET)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert payload["files_checked"] == 1
        assert isinstance(payload["findings"], list) and payload["findings"]
        finding = payload["findings"][0]
        assert set(finding) == {
            "path", "line", "column", "rule", "message", "fix_hint",
        }
        assert finding["rule"] == "REPRO102"
        assert finding["line"] >= 1 and finding["column"] >= 1

    def test_clean_json(self, capsys):
        assert main(["lint", "--json", str(CLEAN_SNIPPET)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []

    def test_deep_block_reflects_mode(self, capsys):
        assert main(["lint", "--json", str(CLEAN_SNIPPET)]) == 0
        cheap = json.loads(capsys.readouterr().out)
        assert cheap["deep"] == {
            "enabled": False,
            "summaries_extracted": 0,
            "summaries_from_cache": 0,
        }
        assert main(["lint", "--json", "--deep", str(CLEAN_SNIPPET)]) == 0
        deep = json.loads(capsys.readouterr().out)
        assert deep["deep"]["enabled"] is True
        assert deep["deep"]["summaries_extracted"] == 1


class TestTextOutput:
    def test_findings_rendered_with_location_and_hint(self, capsys):
        main(["lint", str(BAD_SNIPPET)])
        out = capsys.readouterr().out
        assert "det_wallclock.py" in out
        assert "REPRO102" in out
        assert "hint:" in out

    def test_summary_goes_to_stderr(self, capsys):
        main(["lint", str(BAD_SNIPPET)])
        err = capsys.readouterr().err
        assert "finding(s)" in err


class TestListRules:
    def test_catalogue_lists_all_families(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in (
            "REPRO101", "REPRO201", "REPRO301", "REPRO401",
            "REPRO501", "REPRO601",
        ):
            assert rule in out
        assert "LINTING.md" in out
