"""LRU pre-eviction policy (repro.policies.lru)."""

import pytest

from repro.errors import SimulationError
from repro.policies.lru import LRUPolicy

from helpers import attach_policy, populate


class TestSelection:
    def test_evicts_least_recently_used(self):
        policy = LRUPolicy()
        chain, _, _ = attach_policy(policy)
        populate(policy, [1, 2, 3])
        victims = policy.select_victims(16, time=0)
        assert [v.chunk_id for v in victims] == [1]

    def test_touch_refreshes_recency(self):
        policy = LRUPolicy()
        chain, _, _ = attach_policy(policy)
        entries = populate(policy, [1, 2, 3])
        policy.on_page_touched(entries[0], vpn=16, time=5)
        victims = policy.select_victims(16, time=10)
        assert [v.chunk_id for v in victims] == [2]

    def test_evicts_enough_for_multi_chunk_request(self):
        policy = LRUPolicy()
        attach_policy(policy)
        populate(policy, [1, 2, 3])
        victims = policy.select_victims(20, time=0)  # > one chunk
        assert [v.chunk_id for v in victims] == [1, 2]

    def test_insufficient_memory_raises(self):
        policy = LRUPolicy()
        attach_policy(policy)
        populate(policy, [1])
        with pytest.raises(SimulationError):
            policy.select_victims(17, time=0)

    def test_partial_chunks_counted_by_resident_pages(self):
        policy = LRUPolicy()
        chain, _, _ = attach_policy(policy)
        entries = populate(policy, [1, 2])
        entries[0].resident_mask = 0b11  # only 2 pages resident
        victims = policy.select_victims(10, time=0)
        assert [v.chunk_id for v in victims] == [1, 2]

    def test_name(self):
        assert LRUPolicy().name == "lru"
        assert LRUPolicy().current_strategy == "lru"
