"""Capacity sweep analysis (repro.analysis.sweep)."""

import pytest

from repro.analysis.sweep import capacity_sweep, find_knee
from repro.errors import ReproError


class TestCapacitySweep:
    def test_curve_is_anchored_at_one(self):
        sweep = capacity_sweep("STN", "baseline", rates=(1.0, 0.5), scale=0.5)
        assert sweep.slowdown_at(1.0) == 1.0
        assert sweep.slowdown_at(0.5) > 1.0

    def test_rate_one_added_if_missing(self):
        sweep = capacity_sweep("STN", "baseline", rates=(0.5,), scale=0.5)
        assert {p.rate for p in sweep.points} == {1.0, 0.5}

    def test_slowdown_monotone_for_thrasher(self):
        sweep = capacity_sweep(
            "STN", "baseline", rates=(1.0, 0.75, 0.5), scale=0.5
        )
        slowdowns = [p.slowdown for p in sweep.points]  # descending rates
        assert slowdowns == sorted(slowdowns)

    def test_as_series(self):
        sweep = capacity_sweep("STN", "baseline", rates=(1.0, 0.5), scale=0.5)
        series = sweep.as_series()
        assert series["100%"] == 1.0
        assert "50%" in series

    def test_unknown_rate_query(self):
        sweep = capacity_sweep("STN", "baseline", rates=(1.0,), scale=0.5)
        with pytest.raises(ReproError):
            sweep.slowdown_at(0.33)


class TestKnee:
    def test_thrasher_has_knee(self):
        sweep = capacity_sweep(
            "STN", "baseline", rates=(1.0, 0.75, 0.5), scale=0.5
        )
        knee = find_knee(sweep, threshold=1.5)
        assert knee is not None and knee < 1.0

    def test_streaming_app_has_no_knee(self):
        sweep = capacity_sweep(
            "HOT", "baseline", rates=(1.0, 0.75, 0.5), scale=0.5
        )
        # Streaming with prefetch degrades gently; use a high threshold.
        assert find_knee(sweep, threshold=10.0) is None

    def test_cppe_knee_not_above_baseline(self):
        base = capacity_sweep("STN", "baseline", rates=(1.0, 0.75, 0.5), scale=0.5)
        cppe = capacity_sweep("STN", "cppe", rates=(1.0, 0.75, 0.5), scale=0.5)
        for rate in (0.75, 0.5):
            assert cppe.slowdown_at(rate) <= base.slowdown_at(rate) * 1.1
