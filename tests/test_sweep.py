"""Capacity sweep analysis (repro.analysis.sweep)."""

import math

import pytest

from repro.analysis.sweep import (
    capacity_sweep,
    crash_rate,
    find_knee,
    normalise_sweep,
    sweep_specs,
)
from repro.engine.simulator import SimulationResult
from repro.engine.stats import SimStats
from repro.errors import HarnessError, ReproError


class TestCapacitySweep:
    def test_curve_is_anchored_at_one(self):
        sweep = capacity_sweep("STN", "baseline", rates=(1.0, 0.5), scale=0.5)
        assert sweep.slowdown_at(1.0) == 1.0
        assert sweep.slowdown_at(0.5) > 1.0

    def test_rate_one_added_if_missing(self):
        sweep = capacity_sweep("STN", "baseline", rates=(0.5,), scale=0.5)
        assert {p.rate for p in sweep.points} == {1.0, 0.5}

    def test_slowdown_monotone_for_thrasher(self):
        sweep = capacity_sweep(
            "STN", "baseline", rates=(1.0, 0.75, 0.5), scale=0.5
        )
        slowdowns = [p.slowdown for p in sweep.points]  # descending rates
        assert slowdowns == sorted(slowdowns)

    def test_as_series(self):
        sweep = capacity_sweep("STN", "baseline", rates=(1.0, 0.5), scale=0.5)
        series = sweep.as_series()
        assert series["100%"] == 1.0
        assert "50%" in series

    def test_unknown_rate_query(self):
        sweep = capacity_sweep("STN", "baseline", rates=(1.0,), scale=0.5)
        with pytest.raises(ReproError):
            sweep.slowdown_at(0.33)


class TestKnee:
    def test_thrasher_has_knee(self):
        sweep = capacity_sweep(
            "STN", "baseline", rates=(1.0, 0.75, 0.5), scale=0.5
        )
        knee = find_knee(sweep, threshold=1.5)
        assert knee is not None and knee < 1.0

    def test_streaming_app_has_no_knee(self):
        sweep = capacity_sweep(
            "HOT", "baseline", rates=(1.0, 0.75, 0.5), scale=0.5
        )
        # Streaming with prefetch degrades gently; use a high threshold.
        assert find_knee(sweep, threshold=10.0) is None

    def test_cppe_knee_not_above_baseline(self):
        base = capacity_sweep("STN", "baseline", rates=(1.0, 0.75, 0.5), scale=0.5)
        cppe = capacity_sweep("STN", "cppe", rates=(1.0, 0.75, 0.5), scale=0.5)
        for rate in (0.75, 0.5):
            assert cppe.slowdown_at(rate) <= base.slowdown_at(rate) * 1.1


def _result(cycles: int, crashed: bool = False) -> SimulationResult:
    stats = SimStats()
    stats.total_cycles = cycles
    return SimulationResult(
        workload="unit",
        pattern_type="IV",
        policy="lru",
        prefetcher="locality",
        oversubscription=None,
        capacity_pages=256,
        footprint_pages=256,
        stats=stats,
        crashed=crashed,
        crash_reason="thrashing crash budget exceeded" if crashed else "",
    )


class TestCrashedRuns:
    """Regressions: crashed runs have no runtime, and must never be
    normalised against or register as knee crossings."""

    def _normalised(self, outcomes):
        """Normalise synthetic ``{rate: (cycles, crashed)}`` outcomes."""
        rates, specs = sweep_specs("APP", "baseline", outcomes)
        results = {
            spec.key(): _result(*outcomes[rate])
            for rate, spec in zip(rates, specs)
        }
        return normalise_sweep("APP", "baseline", rates, specs, results)

    def test_crashed_anchor_raises(self):
        with pytest.raises(HarnessError, match="anchor run crashed"):
            self._normalised({1.0: (1000, True), 0.5: (5000, False)})

    def test_non_anchor_crash_is_nan_not_ratio(self):
        sweep = self._normalised({1.0: (1000, False), 0.5: (9000, True)})
        point = sweep.points[-1]
        assert point.crashed
        assert math.isnan(point.slowdown)
        # The raw cycle count stays inspectable; the series carries the nan.
        assert point.cycles == 9000
        assert math.isnan(sweep.as_series()["50%"])

    def test_find_knee_skips_crashed_points(self):
        # The 0.5 crash "exceeds" any threshold numerically, but its cycle
        # count is garbage; the only honest crossing is at 0.4.
        sweep = self._normalised({
            1.0: (1000, False),
            0.5: (90000, True),
            0.4: (2000, False),
        })
        assert find_knee(sweep, threshold=1.5) == 0.4

    def test_all_crossings_crashed_means_no_knee(self):
        sweep = self._normalised({1.0: (1000, False), 0.5: (90000, True)})
        assert find_knee(sweep, threshold=1.5) is None
        assert crash_rate(sweep) == 0.5

    def test_crash_rate_none_without_crashes(self):
        sweep = self._normalised({1.0: (1000, False), 0.5: (2000, False)})
        assert crash_rate(sweep) is None

    def test_genuine_crash_through_engine(self):
        # MVT under a tight eviction budget crashes below full capacity but
        # completes unconstrained, so the anchor is fine and the crashed
        # point flows through as nan.
        sweep = capacity_sweep(
            "MVT", "baseline", rates=(1.0, 0.5), scale=0.25,
            crash_budget_factor=0.1,
        )
        assert sweep.slowdown_at(1.0) == 1.0
        assert crash_rate(sweep) == 0.5
        assert math.isnan(sweep.slowdown_at(0.5))
        assert find_knee(sweep, threshold=1.5) is None
