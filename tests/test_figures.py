"""Figure regenerators on cheap subsets (repro.harness.figures)."""

import pytest

from repro.harness import figures
from repro.harness.experiment import clear_cache


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield


SMALL = dict(scale=0.25)


class TestFig3:
    def test_structure(self):
        r = figures.fig3(apps=["STN", "B+T"], **SMALL)
        assert set(r.series) == {"random", "lru-20"}
        assert set(r.series["random"]) == {"STN", "B+T"}
        assert r.averages
        assert "fig3" == r.name

    def test_values_are_positive_speedups(self):
        r = figures.fig3(apps=["STN"], **SMALL)
        for points in r.series.values():
            for v in points.values():
                assert v is not None and v > 0


class TestFig4:
    def test_only_apps_above_threshold_shown(self):
        r = figures.fig4(apps=["MVT", "HOT"], threshold=1.2, **SMALL)
        shown = r.series["eviction-ratio"]
        for v in shown.values():
            assert v >= 1.2

    def test_mvt_ratio_is_large(self):
        r = figures.fig4(apps=["MVT"], threshold=1.0, **SMALL)
        assert r.series["eviction-ratio"]["MVT"] > 2.0


class TestFig7:
    def test_both_schemes_reported_per_rate(self):
        r = figures.fig7(apps=["NW"], rates=(0.5,), **SMALL)
        assert set(r.series) == {"scheme-1@50%", "scheme-2@50%"}


class TestFig8:
    def test_series_per_rate(self):
        r = figures.fig8(apps=["STN", "HOT"], rates=(0.75, 0.5), **SMALL)
        assert set(r.series) == {"cppe@75%", "cppe@50%"}
        assert len(r.series["cppe@75%"]) == 2

    def test_render_smoke(self):
        r = figures.fig8(apps=["STN"], rates=(0.5,), **SMALL)
        out = r.render()
        assert "fig8" in out and "STN" in out


class TestFig9:
    def test_four_comparison_setups(self):
        r = figures.fig9(apps=["STN"], rates=(0.5,), **SMALL)
        assert set(r.series) == {
            "random@50%", "lru-10@50%", "lru-20@50%", "cppe@50%"
        }


class TestFig10:
    def test_stop_and_cppe_series(self):
        r = figures.fig10(apps=["HOT", "NW"], rates=(0.5,), **SMALL)
        assert set(r.series) == {"stop-on-full@50%", "cppe@50%"}

    def test_crash_budget_normalises_to_stop(self):
        r = figures.fig10(
            apps=["MVT"], rates=(0.5,), crash_budget=0.1, **SMALL
        )
        # With the baseline crashed, stop-on-full becomes the reference.
        assert r.series["stop-on-full@50%"]["MVT"] == 1.0
        assert any("crashed" in n for n in r.notes)
