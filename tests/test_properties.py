"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PatternBufferConfig, SimConfig, SMConfig, TranslationConfig
from repro.engine.simulator import Simulator
from repro.memsim.chunk_chain import ChunkChain, ChunkEntry
from repro.memsim.device_memory import DeviceMemory
from repro.policies.mhpe import untouch_bucket
from repro.prefetch.pattern_aware import PatternBuffer
from repro.translation.tlb import TLB
from repro.config import TLBConfig
from repro.workloads.base import Workload, block_split, interleave_split

# ---------------------------------------------------------------------------
# Chunk chain
# ---------------------------------------------------------------------------

chain_ops = st.lists(
    st.tuples(
        st.sampled_from(["insert_tail", "insert_head", "remove", "move"]),
        st.integers(min_value=0, max_value=15),
    ),
    max_size=60,
)


@given(chain_ops)
def test_chunk_chain_structure_invariants(ops):
    """After any op sequence: index matches links, no dangling nodes."""
    chain = ChunkChain()
    for op, cid in ops:
        if op == "insert_tail" and cid not in chain:
            chain.insert_tail(ChunkEntry(cid, 0))
        elif op == "insert_head" and cid not in chain:
            chain.insert_head(ChunkEntry(cid, 0))
        elif op == "remove" and cid in chain:
            chain.remove(cid)
        elif op == "move" and cid in chain:
            chain.move_to_tail(cid)
        forward = [e.chunk_id for e in chain.from_head()]
        backward = [e.chunk_id for e in chain.from_tail()]
        assert forward == list(reversed(backward))
        assert len(forward) == len(chain)
        assert set(forward) == set(
            e.chunk_id for e in map(chain.get, forward)
        )


@given(
    st.integers(min_value=0, max_value=0xFFFF),
    st.integers(min_value=0, max_value=0xFFFF),
)
def test_untouch_level_is_resident_minus_touched(resident, touched):
    entry = ChunkEntry(0, 0)
    entry.resident_mask = resident
    entry.touched_mask = touched
    assert entry.untouch_level() == bin(resident & ~touched).count("1")
    assert 0 <= entry.untouch_level() <= 16


# ---------------------------------------------------------------------------
# Device memory
# ---------------------------------------------------------------------------


@given(st.lists(st.booleans(), max_size=100), st.integers(min_value=1, max_value=16))
def test_device_memory_conservation(ops, capacity):
    """allocated + free == capacity at every step; frames never duplicated."""
    mem = DeviceMemory(capacity)
    held = []
    for do_alloc in ops:
        if do_alloc and mem.free_frames:
            held.append(mem.allocate())
        elif held:
            mem.free(held.pop())
        assert mem.allocated_frames + mem.free_frames == mem.capacity
        assert len(set(held)) == len(held)
        assert mem.allocated_frames == len(held)


# ---------------------------------------------------------------------------
# TLB
# ---------------------------------------------------------------------------


@given(st.lists(st.integers(min_value=0, max_value=300), max_size=200))
def test_tlb_occupancy_bounded(vpns):
    tlb = TLB(TLBConfig(entries=16, associativity=4))
    for vpn in vpns:
        if not tlb.lookup(vpn):
            tlb.insert(vpn)
        assert tlb.occupancy() <= 16
    # Everything reported present must actually hit.
    for vpn in set(vpns):
        if vpn in tlb:
            assert tlb.lookup(vpn)


# ---------------------------------------------------------------------------
# untouch bucket
# ---------------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=200))
def test_untouch_bucket_monotone_and_bounded(level):
    b = untouch_bucket(level)
    assert 0 <= b <= 4
    if level > 0:
        assert untouch_bucket(level - 1) <= b


# ---------------------------------------------------------------------------
# Pattern buffer
# ---------------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=20),  # chunk id
            st.integers(min_value=1, max_value=0xFFFF),  # touched mask
            st.integers(min_value=0, max_value=16),  # untouch level
        ),
        max_size=50,
    ),
    st.integers(min_value=1, max_value=8),
)
def test_pattern_buffer_capacity_never_exceeded(records, cap):
    buf = PatternBuffer(PatternBufferConfig(max_entries=cap))
    for cid, mask, untouch in records:
        buf.record(cid, mask, untouch)
        assert len(buf) <= cap
        entry = buf.get(cid)
        if entry is not None:
            assert entry.touched_mask != 0


# ---------------------------------------------------------------------------
# Workload splitting
# ---------------------------------------------------------------------------


@given(
    st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=300),
    st.integers(min_value=1, max_value=32),
)
def test_splits_partition_the_stream(elements, n):
    arr = np.asarray(elements, dtype=np.int64)
    for split in (interleave_split, block_split):
        parts = split(arr, n)
        assert len(parts) == n
        assert sum(len(p) for p in parts) == len(arr)
        assert sorted(np.concatenate(parts)) == sorted(elements)


# ---------------------------------------------------------------------------
# End-to-end conservation (slow: keep example count low)
# ---------------------------------------------------------------------------


@settings(max_examples=10, deadline=None)
@given(
    footprint_chunks=st.integers(min_value=8, max_value=24),
    sweeps=st.integers(min_value=1, max_value=3),
    rate=st.sampled_from([0.5, 0.75, None]),
    seed=st.integers(min_value=0, max_value=3),
)
def test_simulation_conservation_invariants(footprint_chunks, sweeps, rate, seed):
    """For arbitrary small cyclic workloads and rates:

    * all accesses execute;
    * pages migrated = demand + prefetched;
    * residency never exceeds capacity;
    * pages evicted <= pages migrated;
    * every SM finishes.
    """
    footprint = footprint_chunks * 16
    rng = np.random.default_rng(seed)
    base = np.tile(np.arange(footprint, dtype=np.int64), sweeps)
    # Sprinkle random repeats to vary merge behaviour.
    extra = rng.integers(0, footprint, size=footprint // 4)
    accesses = np.concatenate([base, extra])
    wl = Workload(
        name="prop", pattern_type="IV", footprint_pages=footprint,
        accesses=accesses,
    )
    sim = Simulator(
        wl,
        oversubscription=rate,
        config=SimConfig(
            sm=SMConfig(num_sms=4), translation=TranslationConfig(enabled=False)
        ),
    )
    result = sim.run()
    s = result.stats
    assert s.accesses == wl.num_accesses
    assert s.pages_migrated == s.demand_pages + s.prefetched_pages
    assert sim.gmmu.device.peak_allocated <= sim.capacity
    assert s.pages_evicted <= s.pages_migrated
    assert all(sm.done for sm in sim.sms)


# ---------------------------------------------------------------------------
# Report rendering
# ---------------------------------------------------------------------------


@given(
    st.lists(
        st.lists(
            st.one_of(st.integers(-10**6, 10**6), st.floats(-1e6, 1e6),
                      st.text(max_size=12), st.none(), st.booleans()),
            min_size=2, max_size=2,
        ),
        min_size=1, max_size=20,
    )
)
def test_render_table_always_aligned(rows):
    from repro.harness.report import render_table

    out = render_table(["col-a", "col-b"], rows)
    lines = out.splitlines()
    assert len(lines) == 2 + len(rows)
    widths = {len(line) for line in lines}
    assert len(widths) == 1  # every row padded to the same width
