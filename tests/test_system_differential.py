"""Differential proof that the staged MemorySystem is the old monolith.

The tentpole refactor (``repro.memsim.system``) must be *behavior
preserving*: same results, same traces, same cache keys.  These tests run
the staged pipeline and the frozen pre-refactor god-object
(``tests/_legacy_gmmu.py``) over a workload × policy × oversubscription
matrix and require **byte-identical** pickled ``SimulationResult``s and
byte-identical JSONL traces.

The legacy class is injected by monkeypatching the ``MemorySystem`` name
the ``Simulator`` module resolves at construction time — both classes see
the exact same constructor arguments and the same post-construction
``page_table`` installation, so any divergence is a real behavioral
difference in the pipeline, not harness noise.
"""

from __future__ import annotations

import dataclasses
import pickle
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))
from _legacy_gmmu import GMMU as LegacyGMMU  # noqa: E402

import repro.engine.simulator as simulator_module  # noqa: E402
from repro.config import SimConfig  # noqa: E402
from repro.harness.baselines import build_setup  # noqa: E402
from repro.harness.cache import _PICKLE_PROTOCOL  # noqa: E402
from repro.obs import Observability, write_jsonl  # noqa: E402
from repro.workloads.suite import make_workload  # noqa: E402

#: The paper's policy families: LRU (baseline), HPE, MHPE alone, full CPPE.
SETUPS = ["baseline", "hpe", "mhpe-naive", "cppe"]
RATES = [None, 0.75, 0.5]
#: One app per regularity regime: NW (strided thrasher, pattern-prefetch
#: target), SRD (MRU-friendly regular), BFS (irregular).
APPS = ["NW", "SRD", "BFS"]
SCALE = 0.25


def _run(app, setup, rate, monkeypatch, legacy, obs=None, config=None):
    """One simulation through the public Simulator, staged or legacy."""
    if legacy:
        monkeypatch.setattr(simulator_module, "MemorySystem", LegacyGMMU)
    else:
        monkeypatch.undo()
    workload = make_workload(app, scale=SCALE)
    policy, prefetcher = build_setup(setup)
    sim = simulator_module.Simulator(
        workload,
        policy=policy,
        prefetcher=prefetcher,
        oversubscription=rate,
        config=config,
        obs=obs,
    )
    memory_cls = type(sim.gmmu)
    assert (memory_cls is LegacyGMMU) == legacy, memory_cls
    return sim.run()


class TestByteIdenticalResults:
    @pytest.mark.parametrize("setup", SETUPS)
    @pytest.mark.parametrize("rate", RATES)
    @pytest.mark.parametrize("app", APPS)
    def test_result_bytes_match_monolith(self, app, setup, rate, monkeypatch):
        staged = _run(app, setup, rate, monkeypatch, legacy=False)
        legacy = _run(app, setup, rate, monkeypatch, legacy=True)
        assert pickle.dumps(staged, protocol=_PICKLE_PROTOCOL) == pickle.dumps(
            legacy, protocol=_PICKLE_PROTOCOL
        )

    def test_crash_outcome_matches_monolith(self, monkeypatch):
        # The runaway-thrashing crash model lives in the EvictionService now;
        # the budget accounting must trip at the exact same eviction.
        base = SimConfig()
        config = base.with_(
            uvm=dataclasses.replace(base.uvm, crash_eviction_budget_factor=0.5)
        )
        staged = _run("NW", "baseline", 0.5, monkeypatch, False, config=config)
        legacy = _run("NW", "baseline", 0.5, monkeypatch, True, config=config)
        assert staged.crashed and legacy.crashed
        assert pickle.dumps(staged, protocol=_PICKLE_PROTOCOL) == pickle.dumps(
            legacy, protocol=_PICKLE_PROTOCOL
        )


class TestByteIdenticalTraces:
    @pytest.mark.parametrize("setup", ["baseline", "cppe"])
    @pytest.mark.parametrize("rate", [0.5])
    def test_jsonl_trace_bytes_match_monolith(
        self, setup, rate, monkeypatch, tmp_path
    ):
        obs_a = Observability.enabled_()
        _run("NW", setup, rate, monkeypatch, legacy=False, obs=obs_a)
        obs_b = Observability.enabled_()
        _run("NW", setup, rate, monkeypatch, legacy=True, obs=obs_b)
        staged_path = write_jsonl(obs_a.tracer.events, tmp_path / "staged.jsonl")
        legacy_path = write_jsonl(obs_b.tracer.events, tmp_path / "legacy.jsonl")
        staged_bytes = staged_path.read_bytes()
        assert staged_bytes == legacy_path.read_bytes()
        assert staged_bytes  # a traced oversubscribed run is never empty

    def test_metrics_snapshot_matches_monolith(self, monkeypatch):
        # Counters/histograms moved into the stages; names, registration
        # order and values must survive the move.
        obs_a = Observability.enabled_()
        _run("NW", "cppe", 0.5, monkeypatch, legacy=False, obs=obs_a)
        obs_b = Observability.enabled_()
        _run("NW", "cppe", 0.5, monkeypatch, legacy=True, obs=obs_b)
        assert obs_a.metrics.snapshot() == obs_b.metrics.snapshot()
