"""Command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "SRD"])
        assert args.setup == "cppe"
        assert args.rate == 0.5

    def test_unknown_setup_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "SRD", "--setup", "magic"])

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "SRD" in out and "Polybench" in out
        assert out.count("\n") >= 24  # 23 apps + header

    def test_run_table_output(self, capsys):
        assert main(["run", "STN", "--rate", "0.5", "--scale", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "total_cycles" in out
        assert "STN@50%" in out

    def test_run_json_output(self, capsys):
        assert main(
            ["run", "STN", "--rate", "0.5", "--scale", "0.5", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"] == "STN"
        assert payload["total_cycles"] > 0
        assert not payload["crashed"]

    def test_run_with_baseline_speedup(self, capsys):
        assert main(
            ["run", "STN", "--rate", "0.5", "--scale", "0.5",
             "--baseline", "baseline"]
        ) == 0
        assert "speedup over baseline" in capsys.readouterr().out

    def test_run_unlimited_rate(self, capsys):
        assert main(["run", "STN", "--rate", "1.0", "--scale", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "chunks_evicted      | 0" in out.replace("  ", " ") or "0" in out

    def test_figure_subset(self, capsys):
        assert main(
            ["figure", "fig8", "--apps", "STN", "--scale", "0.5"]
        ) == 0
        out = capsys.readouterr().out
        assert "fig8" in out and "STN" in out

    def test_table_subset(self, capsys):
        assert main(
            ["table", "table3", "--apps", "STN", "--scale", "1.0"]
        ) == 0
        assert "max untouch" in capsys.readouterr().out


class TestTraceCommand:
    def test_profile_output(self, capsys):
        assert main(["trace", "NW", "--scale", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "stride" in out and "working set per quarter" in out

    def test_save_trace(self, capsys, tmp_path):
        path = tmp_path / "nw.npz"
        assert main(["trace", "NW", "--scale", "0.25", "--save", str(path)]) == 0
        assert path.exists()
        assert "wrote" in capsys.readouterr().out


class TestSweepCommand:
    def test_sweep_output(self, capsys):
        assert main(
            ["sweep", "STN", "--rates", "1.0", "0.5", "--scale", "0.5"]
        ) == 0
        out = capsys.readouterr().out
        assert "slowdown vs capacity" in out
        assert "100%" in out and "50%" in out

    def test_knee_reported(self, capsys):
        assert main(
            ["sweep", "STN", "--rates", "1.0", "0.5", "--scale", "0.5",
             "--knee-threshold", "1.5"]
        ) == 0
        assert "knee" in capsys.readouterr().out
