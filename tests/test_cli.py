"""Command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "SRD"])
        assert args.setup == "cppe"
        assert args.rate == 0.5

    def test_unknown_setup_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "SRD", "--setup", "magic"])

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "SRD" in out and "Polybench" in out
        assert out.count("\n") >= 24  # 23 apps + header

    def test_run_table_output(self, capsys):
        assert main(["run", "STN", "--rate", "0.5", "--scale", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "total_cycles" in out
        assert "STN@50%" in out

    def test_run_json_output(self, capsys):
        assert main(
            ["run", "STN", "--rate", "0.5", "--scale", "0.5", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"] == "STN"
        assert payload["total_cycles"] > 0
        assert not payload["crashed"]

    def test_run_with_baseline_speedup(self, capsys):
        assert main(
            ["run", "STN", "--rate", "0.5", "--scale", "0.5",
             "--baseline", "baseline"]
        ) == 0
        assert "speedup over baseline" in capsys.readouterr().out

    def test_run_unlimited_rate(self, capsys):
        assert main(["run", "STN", "--rate", "1.0", "--scale", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "chunks_evicted      | 0" in out.replace("  ", " ") or "0" in out

    def test_figure_subset(self, capsys):
        assert main(
            ["figure", "fig8", "--apps", "STN", "--scale", "0.5"]
        ) == 0
        out = capsys.readouterr().out
        assert "fig8" in out and "STN" in out

    def test_table_subset(self, capsys):
        assert main(
            ["table", "table3", "--apps", "STN", "--scale", "1.0"]
        ) == 0
        assert "max untouch" in capsys.readouterr().out


class TestTraceCommand:
    def test_profile_output(self, capsys):
        assert main(["trace", "NW", "--scale", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "stride" in out and "working set per quarter" in out

    def test_save_trace(self, capsys, tmp_path):
        path = tmp_path / "nw.npz"
        assert main(["trace", "NW", "--scale", "0.25", "--save", str(path)]) == 0
        assert path.exists()
        assert "wrote" in capsys.readouterr().out


class TestSweepCommand:
    def test_sweep_output(self, capsys):
        assert main(
            ["sweep", "STN", "--rates", "1.0", "0.5", "--scale", "0.5"]
        ) == 0
        out = capsys.readouterr().out
        assert "slowdown vs capacity" in out
        assert "100%" in out and "50%" in out

    def test_knee_reported(self, capsys):
        assert main(
            ["sweep", "STN", "--rates", "1.0", "0.5", "--scale", "0.5",
             "--knee-threshold", "1.5"]
        ) == 0
        assert "knee" in capsys.readouterr().out


class TestRegenCommand:
    def test_regen_figure_with_cache_dir(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        assert main(
            ["regen", "fig3", "--apps", "STN", "--scale", "0.25",
             "--jobs", "1", "--cache-dir", str(cache_dir)]
        ) == 0
        captured = capsys.readouterr()
        assert "fig3" in captured.out
        assert "new simulations" in captured.err
        assert list(cache_dir.glob("*/*.pkl"))  # results persisted

    def test_regen_warm_cache_does_zero_new_simulations(self, capsys, tmp_path):
        from repro.harness.experiment import clear_cache, execution_count

        cache_dir = str(tmp_path / "cache")
        argv = ["regen", "fig3", "--apps", "STN", "--scale", "0.25",
                "--jobs", "1", "--cache-dir", cache_dir]
        assert main(argv) == 0
        capsys.readouterr()
        clear_cache(disk=False)  # simulate a fresh session
        before = execution_count()
        assert main(argv) == 0
        assert execution_count() == before
        assert "0 new simulations" in capsys.readouterr().err

    def test_regen_parallel_table(self, capsys, tmp_path):
        assert main(
            ["regen", "overhead", "--apps", "STN", "NW", "--scale", "0.25",
             "--jobs", "2", "--cache-dir", str(tmp_path / "cache")]
        ) == 0
        assert "overhead" in capsys.readouterr().out

    def test_regen_no_cache(self, capsys, tmp_path):
        assert main(
            ["regen", "fig3", "--apps", "STN", "--scale", "0.25",
             "--jobs", "1", "--no-cache"]
        ) == 0
        assert "fig3" in capsys.readouterr().out

    def test_regen_rejects_unknown_artifact(self):
        with pytest.raises(SystemExit):
            main(["regen", "fig99"])


class TestCacheCommand:
    def _populate(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        main(["regen", "fig3", "--apps", "STN", "--scale", "0.25",
              "--jobs", "1", "--cache-dir", cache_dir])
        return cache_dir

    def test_stats(self, capsys, tmp_path):
        cache_dir = self._populate(tmp_path)
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir, "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 3  # STN x baseline/random/lru-20
        assert stats["bytes"] > 0

    def test_clear(self, capsys, tmp_path):
        cache_dir = self._populate(tmp_path)
        capsys.readouterr()
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed 3" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", cache_dir, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 0

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["cache"])
