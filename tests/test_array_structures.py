"""Property tests: the array structures are their object-graph oracles.

Hypothesis drives random operation sequences against an
(:class:`ArrayPageTable`, :class:`PageTable`) pair and an
(:class:`ArrayChunkChain`, :class:`ChunkChain`) pair, asserting the
observable state agrees after every step.  This is the unit-level
counterpart of ``tests/test_backend_differential.py``: the differential
suite proves whole simulations byte-identical, these properties localise
any divergence to a single structure operation.

VPN/chunk-id strategies straddle the workload base (``0x80000``) and zero
on purpose: low-side growth (``arr[:0] = ...``) is the delicate direction
of the origin-offset representation.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim.array_backend import (
    ArrayChunkChain,
    ArrayCoverage,
    ArrayPageTable,
    unpack_masks,
)
from repro.memsim.chunk_chain import ChunkChain, ChunkEntry
from repro.memsim.page_table import PageTable

#: A few ids below / around zero, a band at the workload base: exercises
#: in-place growth at both ends plus negative indices (which must NOT wrap
#: around pythonically).
VPNS = st.one_of(
    st.integers(min_value=0, max_value=40),
    st.integers(min_value=0x80000 - 8, max_value=0x80000 + 72),
)
CHUNK_IDS = st.one_of(
    st.integers(min_value=0, max_value=6),
    st.integers(min_value=0x2000 - 2, max_value=0x2000 + 10),
)

PT_OPS = st.lists(
    st.tuples(
        st.sampled_from(["map", "unmap", "read", "write", "probe"]), VPNS
    ),
    max_size=60,
)


def _pt_observables(pt, vpns):
    return (
        len(pt),
        pt.resident_peak,
        pt.resident_vpns(),
        [(pt.is_resident(v), pt.frame_of(v), pt.accessed(v), pt.dirty(v))
         for v in vpns],
    )


class TestArrayPageTable:
    @settings(max_examples=60, deadline=None)
    @given(ops=PT_OPS)
    def test_matches_dict_page_table(self, ops):
        arr = ArrayPageTable(4, origin_hint=0x80000, size_hint=64)
        obj = PageTable(4)
        next_frame = 0
        touched = sorted({vpn for _, vpn in ops})
        for op, vpn in ops:
            if op == "map" and not obj.is_resident(vpn):
                arr.map(vpn, next_frame)
                obj.map(vpn, next_frame)
                next_frame += 1
            elif op == "unmap" and obj.is_resident(vpn):
                assert arr.unmap(vpn) == obj.unmap(vpn)
            elif op in ("read", "write") and obj.is_resident(vpn):
                arr.record_access(vpn, is_write=op == "write")
                obj.record_access(vpn, is_write=op == "write")
            elif op == "probe":
                assert (vpn in arr) == (vpn in obj)
            assert _pt_observables(arr, touched) == _pt_observables(obj, touched)
        # The walk structure is inherited arithmetic — same node keys.
        for vpn in touched[:5]:
            assert arr.node_keys(vpn) == obj.node_keys(vpn)

    def test_unmap_of_vpn_below_origin_raises(self):
        import pytest

        from repro.errors import SimulationError

        arr = ArrayPageTable(4, origin_hint=0x80000, size_hint=16)
        with pytest.raises(SimulationError):
            arr.unmap(0x7FF00)  # negative local index must not wrap


CHAIN_OPS = st.lists(
    st.tuples(
        st.sampled_from(
            ["insert_tail", "insert_head", "remove", "move_to_tail",
             "touch", "resident", "clear_resident", "counter"]
        ),
        CHUNK_IDS,
        st.integers(min_value=0, max_value=15),
    ),
    max_size=80,
)


def _chain_observables(chain, ids, interval):
    entries = []
    for cid in ids:
        entry = chain.get(cid)
        if entry is None:
            entries.append(None)
        else:
            entries.append(
                (
                    entry.chunk_id,
                    entry.resident_mask,
                    entry.touched_mask,
                    entry.prefetch_mask,
                    entry.counter,
                    entry.last_ref_interval,
                    entry.insert_interval,
                    entry.insert_order,
                    entry.in_chain,
                    entry.untouch_level(),
                    entry.partition(interval),
                )
            )
    return (
        len(chain),
        chain.length_peak,
        [e.chunk_id for e in chain.from_head()],
        [e.chunk_id for e in chain.from_tail()],
        [e.chunk_id for e in chain.candidates_from_tail(interval)],
        [e.chunk_id for e in chain.candidates_from_head(interval)],
        entries,
    )


class TestArrayChunkChain:
    @settings(max_examples=60, deadline=None)
    @given(ops=CHAIN_OPS, interval=st.integers(min_value=0, max_value=4))
    def test_matches_linked_chain(self, ops, interval):
        arr = ArrayChunkChain()
        obj = ChunkChain()
        ids = sorted({cid for _, cid, _ in ops})
        for op, cid, page in ops:
            in_chain = cid in obj
            if op in ("insert_tail", "insert_head") and not in_chain:
                ea = arr.new_entry(cid, interval)
                eo = obj.new_entry(cid, interval)
                getattr(arr, op)(ea)
                getattr(obj, op)(eo)
            elif op == "remove" and in_chain:
                removed_a = arr.remove(cid)
                removed_o = obj.remove(cid)
                assert removed_a.chunk_id == removed_o.chunk_id
                assert removed_a.touched_mask == removed_o.touched_mask
            elif op == "move_to_tail" and in_chain:
                arr.move_to_tail(cid)
                obj.move_to_tail(cid)
            elif op in ("touch", "resident", "clear_resident", "counter") and in_chain:
                ea, eo = arr.get(cid), obj.get(cid)
                if op == "touch":
                    ea.mark_touched(page)
                    eo.mark_touched(page)
                elif op == "resident":
                    ea.mark_resident(page)
                    eo.mark_resident(page)
                elif op == "clear_resident":
                    ea.clear_resident(page)
                    eo.clear_resident(page)
                else:
                    ea.counter += 1
                    eo.counter += 1
            assert _chain_observables(arr, ids, interval) == _chain_observables(
                obj, ids, interval
            )

    def test_mask_matrix_mirrors_masks(self):
        chain = ArrayChunkChain()
        for cid, res, tch in [(3, 0b1011, 0b0010), (7, 0b1111, 0b1111)]:
            entry = chain.new_entry(cid, 0)
            entry.resident_mask = res
            entry.touched_mask = tch
            chain.insert_tail(entry)
        matrix = chain.mask_matrix(pages_per_chunk=4)
        assert matrix.shape == (2, 3, 4)
        assert matrix[0, 0].tolist() == [1, 1, 0, 1]  # chunk 3 resident bits
        assert matrix[0, 1].tolist() == [0, 1, 0, 0]  # chunk 3 touched bits
        assert matrix[1, 0].tolist() == [1, 1, 1, 1]


class TestArrayCoverage:
    @settings(max_examples=40, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["set", "pop", "get"]), VPNS),
            max_size=60,
        )
    )
    def test_matches_dict(self, ops):
        arr = ArrayCoverage()
        obj = {}
        for op, vpn in ops:
            token = object()  # stands in for an InFlightMigration
            if op == "set":
                arr[vpn] = token
                obj[vpn] = token
            elif op == "pop":
                assert arr.pop(vpn, None) is obj.pop(vpn, None)
            else:
                assert arr.get(vpn) is obj.get(vpn)
            assert len(arr) == len(obj)
            assert (vpn in arr) == (vpn in obj)


class TestUnpackMasks:
    @settings(max_examples=60, deadline=None)
    @given(
        masks=st.lists(st.integers(min_value=0, max_value=2**16 - 1), max_size=8),
        pages=st.integers(min_value=1, max_value=16),
    )
    def test_bits_roundtrip(self, masks, pages):
        matrix = unpack_masks(masks, pages)
        assert matrix.shape == (len(masks), pages)
        assert matrix.dtype == np.uint8
        for row, mask in zip(matrix, masks):
            for bit in range(pages):
                assert row[bit] == (mask >> bit) & 1

    def test_popcount_matches_untouch_level(self):
        entry = ChunkEntry(0, 0)
        entry.resident_mask = 0b110110
        entry.touched_mask = 0b010010
        matrix = unpack_masks([entry.resident_mask, entry.touched_mask], 6)
        untouched = int((matrix[0] & ~matrix[1] & 1).sum())
        assert untouched == entry.untouch_level()
