"""End-to-end translation path (repro.translation.hierarchy)."""

from repro.config import TranslationConfig
from repro.engine.stats import SimStats
from repro.memsim.page_table import PageTable
from repro.translation.hierarchy import TranslationHierarchy


def make_hierarchy(num_sms=2):
    stats = SimStats()
    pt = PageTable()
    h = TranslationHierarchy(TranslationConfig(), num_sms, pt, stats)
    return h, pt, stats


class TestTranslatePath:
    def test_resident_page_first_access_walks(self):
        h, pt, stats = make_hierarchy()
        pt.map(100, 0)
        latency, resident = h.translate(0, 100, time=0)
        assert resident
        assert stats.l1_tlb_misses == 1
        assert stats.l2_tlb_misses == 1
        assert stats.page_walks == 1
        assert latency > h.l1_tlbs[0].hit_latency

    def test_second_access_hits_l1(self):
        h, pt, stats = make_hierarchy()
        pt.map(100, 0)
        h.translate(0, 100, 0)
        latency, resident = h.translate(0, 100, 100)
        assert resident
        assert latency == h.l1_tlbs[0].hit_latency
        assert stats.l1_tlb_hits == 1

    def test_other_sm_hits_shared_l2(self):
        h, pt, stats = make_hierarchy()
        pt.map(100, 0)
        h.translate(0, 100, 0)
        latency, _ = h.translate(1, 100, 100)
        # SM1's L1 misses but the shared L2 has the entry.
        assert stats.l2_tlb_hits == 1
        assert stats.page_walks == 1  # no second walk

    def test_nonresident_fault_installs_nothing(self):
        h, pt, stats = make_hierarchy()
        latency, resident = h.translate(0, 100, 0)
        assert not resident
        # Faulting walk must not fill TLBs (there is no mapping yet).
        pt.map(100, 0)
        h.translate(0, 100, 1000)
        assert stats.page_walks == 2

    def test_disabled_translation_is_free(self):
        stats = SimStats()
        pt = PageTable()
        h = TranslationHierarchy(
            TranslationConfig(enabled=False), 1, pt, stats
        )
        pt.map(5, 0)
        assert h.translate(0, 5, 0) == (0, True)
        assert h.translate(0, 6, 0) == (0, False)


class TestShootdown:
    def test_shootdown_invalidates_everywhere(self):
        h, pt, stats = make_hierarchy()
        pt.map(100, 0)
        h.translate(0, 100, 0)
        h.translate(1, 100, 10)
        h.shootdown(100)
        assert stats.tlb_shootdowns == 1
        # Next access must walk again.
        walks_before = stats.page_walks
        h.translate(0, 100, 20)
        assert stats.page_walks == walks_before + 1

    def test_shootdown_absent_vpn_not_counted(self):
        h, pt, stats = make_hierarchy()
        h.shootdown(12345)
        assert stats.tlb_shootdowns == 0


class TestStatsSync:
    def test_sync_copies_pwc_counters(self):
        h, pt, stats = make_hierarchy()
        pt.map(100, 0)
        h.translate(0, 100, 0)
        h.sync_counter_stats()
        assert stats.pwc_misses == h.pwc.misses
        assert stats.pwc_hits == h.pwc.hits
