"""Page table residency + access/dirty bits (repro.memsim.page_table)."""

import pytest

from repro.errors import SimulationError
from repro.memsim.page_table import PageTable


class TestResidency:
    def test_map_and_lookup(self):
        pt = PageTable()
        pt.map(100, 7)
        assert pt.is_resident(100)
        assert pt.frame_of(100) == 7
        assert 100 in pt
        assert len(pt) == 1

    def test_unmapped_lookup(self):
        pt = PageTable()
        assert not pt.is_resident(5)
        assert pt.frame_of(5) is None

    def test_double_map_rejected(self):
        pt = PageTable()
        pt.map(1, 0)
        with pytest.raises(SimulationError):
            pt.map(1, 1)

    def test_unmap_returns_frame_and_bits(self):
        pt = PageTable()
        pt.map(9, 3)
        pt.record_access(9, is_write=True)
        frame, accessed, dirty = pt.unmap(9)
        assert (frame, accessed, dirty) == (3, True, True)
        assert not pt.is_resident(9)

    def test_unmap_missing_rejected(self):
        with pytest.raises(SimulationError):
            PageTable().unmap(1)

    def test_resident_peak(self):
        pt = PageTable()
        pt.map(1, 0)
        pt.map(2, 1)
        pt.unmap(1)
        assert pt.resident_peak == 2

    def test_resident_vpns_sorted(self):
        pt = PageTable()
        for vpn in (30, 10, 20):
            pt.map(vpn, vpn)
        assert pt.resident_vpns() == [10, 20, 30]


class TestAccessDirtyBits:
    def test_fresh_page_is_untouched_and_clean(self):
        pt = PageTable()
        pt.map(4, 0)
        assert not pt.accessed(4)
        assert not pt.dirty(4)

    def test_read_sets_accessed_only(self):
        pt = PageTable()
        pt.map(4, 0)
        pt.record_access(4, is_write=False)
        assert pt.accessed(4)
        assert not pt.dirty(4)

    def test_write_sets_both(self):
        pt = PageTable()
        pt.map(4, 0)
        pt.record_access(4, is_write=True)
        assert pt.accessed(4) and pt.dirty(4)

    def test_access_nonresident_rejected(self):
        with pytest.raises(SimulationError):
            PageTable().record_access(4)

    def test_remap_clears_bits(self):
        # Eviction + re-migration must not inherit old access bits.
        pt = PageTable()
        pt.map(4, 0)
        pt.record_access(4, is_write=True)
        pt.unmap(4)
        pt.map(4, 1)
        assert not pt.accessed(4)
        assert not pt.dirty(4)


class TestWalkStructure:
    def test_node_keys_count_matches_levels(self):
        pt = PageTable(levels=4)
        keys = pt.node_keys(0x12345)
        assert len(keys) == 4
        assert [k[0] for k in keys] == [0, 1, 2, 3]

    def test_leaf_key_is_vpn(self):
        pt = PageTable(levels=4)
        assert pt.node_keys(0x12345)[-1] == (3, 0x12345)

    def test_nearby_vpns_share_upper_levels(self):
        pt = PageTable(levels=4)
        a, b = pt.node_keys(1000), pt.node_keys(1001)
        assert a[:3] == b[:3]
        assert a[3] != b[3]

    def test_distant_vpns_diverge_at_root(self):
        pt = PageTable(levels=4)
        a, b = pt.node_keys(0), pt.node_keys(1 << 30)
        assert a[0] != b[0]

    def test_invalid_levels_rejected(self):
        with pytest.raises(SimulationError):
            PageTable(levels=0)
