"""Frame allocator (repro.memsim.device_memory)."""

import pytest

from repro.errors import CapacityError
from repro.memsim.device_memory import DeviceMemory


class TestAllocation:
    def test_initial_state(self):
        mem = DeviceMemory(8)
        assert mem.capacity == 8
        assert mem.free_frames == 8
        assert mem.allocated_frames == 0
        assert not mem.is_full

    def test_allocate_unique_frames(self):
        mem = DeviceMemory(8)
        frames = [mem.allocate() for _ in range(8)]
        assert sorted(frames) == list(range(8))
        assert mem.is_full

    def test_exhaustion_raises(self):
        mem = DeviceMemory(2)
        mem.allocate()
        mem.allocate()
        with pytest.raises(CapacityError):
            mem.allocate()

    def test_can_allocate(self):
        mem = DeviceMemory(4)
        assert mem.can_allocate(4)
        assert not mem.can_allocate(5)
        mem.allocate()
        assert mem.can_allocate(3)
        assert not mem.can_allocate(4)

    def test_peak_tracking(self):
        mem = DeviceMemory(4)
        a = mem.allocate()
        b = mem.allocate()
        mem.free(a)
        mem.free(b)
        assert mem.peak_allocated == 2


class TestFree:
    def test_free_returns_frame_to_pool(self):
        mem = DeviceMemory(1)
        f = mem.allocate()
        assert mem.is_full
        mem.free(f)
        assert mem.free_frames == 1
        assert mem.allocate() == f

    def test_free_out_of_range(self):
        mem = DeviceMemory(4)
        with pytest.raises(CapacityError):
            mem.free(4)
        with pytest.raises(CapacityError):
            mem.free(-1)

    def test_double_free_detected(self):
        mem = DeviceMemory(2)
        f = mem.allocate()
        mem.free(f)
        with pytest.raises(CapacityError):
            mem.free(f)

    def test_zero_capacity_rejected(self):
        with pytest.raises(CapacityError):
            DeviceMemory(0)
