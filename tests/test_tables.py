"""Table/sensitivity regenerators on cheap subsets (repro.harness.tables)."""

import pytest

from repro.harness import tables
from repro.harness.experiment import clear_cache


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield


class TestTable3:
    # Full scale: the untouch statistics depend on the footprint being large
    # relative to the fixed 64-page interval geometry (see DESIGN.md).
    def test_rows_cover_apps_and_rates(self):
        t = tables.table3(apps=["STN", "NW"], rates=(0.5,), scale=1.0)
        assert t.name == "table3"
        apps = {row[1] for row in t.rows}
        assert apps == {"STN", "NW"}

    def test_strided_app_has_higher_untouch_than_thrasher(self):
        t = tables.table3(apps=["STN", "NW"], rates=(0.5,), scale=1.0)
        d = t.as_dict()
        assert d[("50%", "NW")] > d[("50%", "STN")]

    def test_render(self):
        t = tables.table3(apps=["STN"], rates=(0.5,), scale=1.0)
        assert "max untouch" in t.render()


class TestTable4:
    def test_filters_high_untouch_apps(self):
        t = tables.table4(apps=["STN", "MVT"], rates=(0.5,), scale=1.0)
        apps = {row[1] for row in t.rows}
        # MVT's stride-4 untouch exceeds T1, so the paper's filter drops it.
        assert "MVT" not in apps
        assert "STN" in apps


class TestSensitivityFd:
    def test_regular_untouch_drops_with_distance(self):
        t = tables.sensitivity_fd(
            regular_apps=("STN",),
            irregular_apps=("B+T",),
            distances=(1, 4),
            scale=0.25,
        )
        d = t.as_dict()
        assert d[(4, "regular")] <= d[(1, "regular")]

    def test_irregular_untouch_stays_high(self):
        t = tables.sensitivity_fd(
            regular_apps=("STN",),
            irregular_apps=("B+T",),
            distances=(4,),
            scale=0.25,
        )
        d = t.as_dict()
        assert d[(4, "irregular")] > d[(4, "regular")]


class TestSensitivityT3:
    def test_sweep_produces_row_per_candidate(self):
        t = tables.sensitivity_t3(
            apps=("STN",), candidates=(16, 32), rates=(0.5,), scale=0.25
        )
        assert [row[0] for row in t.rows] == [16, 32]
        assert all(row[1] > 0 for row in t.rows)


class TestOverhead:
    def test_row_per_rate(self):
        t = tables.overhead(apps=["STN", "NW"], rates=(0.75, 0.5), scale=0.25)
        assert [row[0] for row in t.rows] == ["75%", "50%"]

    def test_entries_scale_with_capacity(self):
        t = tables.overhead(apps=["STN"], rates=(0.75, 0.5), scale=0.25)
        entries_75 = t.rows[0][1]
        entries_50 = t.rows[1][1]
        # More resident chunks at 75% than at 50%.
        assert entries_75 > entries_50

    def test_kb_follows_entry_bytes(self):
        t = tables.overhead(apps=["STN"], rates=(0.5,), scale=0.25)
        entries, kb = t.rows[0][1], t.rows[0][2]
        assert kb == pytest.approx(entries * 12 / 1024, rel=0.05)
