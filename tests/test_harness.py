"""Harness: named setups, run specs, memoisation, rendering (repro.harness)."""

import pytest

from repro.errors import ConfigError
from repro.harness.baselines import (
    POLICY_NAMES,
    PREFETCHER_NAMES,
    SETUPS,
    build_policy,
    build_prefetcher,
    build_setup,
)
from repro.harness.experiment import RunSpec, clear_cache, run_matrix, run_one
from repro.harness.report import format_value, render_series, render_table


class TestBaselines:
    def test_all_named_policies_build(self):
        for name in POLICY_NAMES:
            policy = build_policy(name)
            assert hasattr(policy, "select_victims")

    def test_all_named_prefetchers_build(self):
        for name in PREFETCHER_NAMES:
            pf = build_prefetcher(name)
            assert hasattr(pf, "pages_to_migrate")

    def test_all_setups_resolve(self):
        for name in SETUPS:
            policy, prefetcher = build_setup(name)
            assert policy is not None and prefetcher is not None

    def test_setups_return_fresh_instances(self):
        p1, f1 = build_setup("cppe")
        p2, f2 = build_setup("cppe")
        assert p1 is not p2 and f1 is not f2

    def test_baseline_is_lru_plus_naive_locality(self):
        policy, prefetcher = build_setup("baseline")
        assert policy.name == "lru"
        assert prefetcher.name == "locality/continue"

    def test_cppe_is_mhpe_plus_pattern_s2(self):
        policy, prefetcher = build_setup("cppe")
        assert policy.name == "mhpe"

    def test_unknown_names_rejected(self):
        with pytest.raises(ConfigError):
            build_policy("fifo")
        with pytest.raises(ConfigError):
            build_prefetcher("psychic")
        with pytest.raises(ConfigError):
            build_setup("warp-drive")


class TestRunSpecs:
    def test_run_one_produces_result(self):
        clear_cache()
        result = run_one(RunSpec("STN", "baseline", 0.5, scale=0.25))
        assert result.workload == "STN"
        assert result.total_cycles > 0

    def test_memoisation_returns_same_object(self):
        clear_cache()
        spec = RunSpec("STN", "baseline", 0.5, scale=0.25)
        assert run_one(spec) is run_one(spec)

    def test_cache_bypass(self):
        clear_cache()
        spec = RunSpec("STN", "baseline", 0.5, scale=0.25)
        a = run_one(spec)
        b = run_one(spec, use_cache=False)
        assert a is not b
        assert a.total_cycles == b.total_cycles  # still deterministic

    def test_run_matrix_keys(self):
        clear_cache()
        specs = [
            RunSpec("STN", "baseline", 0.5, scale=0.25),
            RunSpec("STN", "cppe", 0.5, scale=0.25),
        ]
        results = run_matrix(specs)
        assert set(results) == {s.key() for s in specs}

    def test_crash_budget_flows_into_config(self):
        clear_cache()
        result = run_one(
            RunSpec("MVT", "baseline", 0.5, scale=0.25, crash_budget_factor=0.1)
        )
        assert result.crashed
        assert "thrashing" in result.crash_reason


class TestReportRendering:
    def test_format_value(self):
        assert format_value(None) == "-"
        assert format_value(True) == "yes"
        assert format_value(1.234) == "1.23"
        assert format_value("x") == "x"

    def test_render_table_alignment(self):
        out = render_table(["a", "long-header"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(l) == len(lines[0]) for l in lines[1:])

    def test_render_table_title(self):
        out = render_table(["a"], [[1]], title="T")
        assert out.startswith("T\n")

    def test_render_series_bars_and_crashes(self):
        out = render_series(
            {"cppe": {"SRD": 2.0, "MVT": None}},
            title="demo",
        )
        assert "SRD" in out and "##" in out
        assert "X (crashed)" in out
