"""TLB behaviour (repro.translation.tlb)."""

from repro.config import TLBConfig
from repro.translation.tlb import TLB


def small_tlb(entries=4, assoc=4):
    return TLB(TLBConfig(entries=entries, associativity=assoc, hit_latency=1))


class TestLookup:
    def test_miss_then_hit(self):
        tlb = small_tlb()
        assert not tlb.lookup(1)
        tlb.insert(1)
        assert tlb.lookup(1)
        assert tlb.hits == 1
        assert tlb.misses == 1

    def test_contains_does_not_count(self):
        tlb = small_tlb()
        tlb.insert(1)
        assert 1 in tlb
        assert tlb.hits == 0 and tlb.misses == 0


class TestReplacement:
    def test_lru_eviction_within_set(self):
        tlb = small_tlb(entries=2, assoc=2)
        tlb.insert(0)
        tlb.insert(2)  # same set (1 set when fully assoc of 2)... fill
        tlb.insert(4)  # evicts 0 (LRU)
        assert not tlb.lookup(0)
        assert tlb.lookup(2)
        assert tlb.lookup(4)

    def test_hit_refreshes_lru(self):
        tlb = small_tlb(entries=2, assoc=2)
        tlb.insert(0)
        tlb.insert(2)
        tlb.lookup(0)  # 0 becomes MRU
        tlb.insert(4)  # evicts 2
        assert tlb.lookup(0)
        assert not tlb.lookup(2)

    def test_set_indexing_isolates_sets(self):
        tlb = small_tlb(entries=4, assoc=1)  # 4 direct-mapped sets
        tlb.insert(0)
        tlb.insert(1)
        tlb.insert(2)
        tlb.insert(3)
        # All land in distinct sets; nothing evicted.
        assert all(tlb.lookup(v) for v in range(4))

    def test_conflict_in_direct_mapped_set(self):
        tlb = small_tlb(entries=4, assoc=1)
        tlb.insert(0)
        tlb.insert(4)  # same set as 0
        assert not tlb.lookup(0)
        assert tlb.lookup(4)

    def test_reinsert_same_vpn_no_eviction(self):
        tlb = small_tlb(entries=2, assoc=2)
        tlb.insert(0)
        tlb.insert(2)
        tlb.insert(0)  # refresh, not new entry
        assert tlb.lookup(2)


class TestInvalidate:
    def test_invalidate_present(self):
        tlb = small_tlb()
        tlb.insert(7)
        assert tlb.invalidate(7)
        assert not tlb.lookup(7)

    def test_invalidate_absent(self):
        assert not small_tlb().invalidate(7)

    def test_flush(self):
        tlb = small_tlb()
        for v in range(4):
            tlb.insert(v)
        tlb.flush()
        assert tlb.occupancy() == 0

    def test_occupancy(self):
        tlb = small_tlb()
        tlb.insert(1)
        tlb.insert(2)
        assert tlb.occupancy() == 2
