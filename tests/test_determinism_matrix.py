"""Determinism across the whole setup matrix.

Reproducibility is a hard requirement for a simulation artifact: every
(policy, prefetcher) pairing must produce bit-identical statistics when run
twice, and different seeds must actually change stochastic workloads.
"""

import pytest

from repro.config import SimConfig, SMConfig
from repro.engine.simulator import Simulator
from repro.harness.baselines import SETUPS, build_setup
from repro.workloads.suite import make_workload

FAST = SimConfig(sm=SMConfig(num_sms=4))

FINGERPRINT_FIELDS = (
    "total_cycles",
    "far_faults",
    "fault_service_ops",
    "pages_migrated",
    "chunks_evicted",
    "wrong_evictions",
    "untouch_total",
    "pattern_hits",
    "pattern_mismatches",
)


def fingerprint(result):
    return tuple(getattr(result.stats, f) for f in FINGERPRINT_FIELDS)


def run(setup, app="NW", seed=None):
    policy, prefetcher = build_setup(setup)
    return Simulator(
        make_workload(app, scale=0.5, seed=seed),
        policy=policy,
        prefetcher=prefetcher,
        oversubscription=0.5,
        config=FAST,
    ).run()


@pytest.mark.parametrize("setup", sorted(SETUPS))
def test_every_setup_is_deterministic(setup):
    assert fingerprint(run(setup)) == fingerprint(run(setup))


def test_random_policy_differs_across_config_seeds():
    def run_seeded(seed):
        policy, prefetcher = build_setup("random")
        cfg = SimConfig(sm=SMConfig(num_sms=4), seed=seed)
        return Simulator(
            make_workload("NW", scale=0.5),
            policy=policy, prefetcher=prefetcher,
            oversubscription=0.5, config=cfg,
        ).run()

    a, b = run_seeded(1), run_seeded(2)
    # Different RNG seeds must change random eviction decisions.
    assert fingerprint(a) != fingerprint(b)


def test_workload_seed_changes_stochastic_traces():
    a, b = run("baseline", app="BFS", seed=1), run("baseline", app="BFS", seed=2)
    assert fingerprint(a) != fingerprint(b)


def test_workload_seed_inert_for_deterministic_traces():
    # STN's trace is a pure cyclic sweep: the seed only affects write flags,
    # so fault/migration counts are identical.
    a, b = run("baseline", app="STN", seed=1), run("baseline", app="STN", seed=2)
    assert a.stats.far_faults == b.stats.far_faults
    assert a.stats.pages_migrated == b.stats.pages_migrated
