"""Failure handling in the experiment harness (repro.harness.faults).

Covers the error taxonomy, the deterministic fault-injection hook
(``REPRO_FAULT_PLAN``), and the ``ParallelRunner`` failure paths: a
simulation-level error surfacing as that spec's failure (never a silent
serial re-run — the ``_POOL_ERRORS`` regression), ``keep_going`` per-spec
outcomes with byte-identical surviving results and cache-based resume,
crashed-worker pool retries, hung-worker reaping, and poisoned-result
validation.
"""

import dataclasses
import json
import pickle

import pytest

from repro.config import SimConfig, SMConfig
from repro.errors import (
    HarnessError,
    PoolError,
    ReproError,
    SimulationError,
    WorkerFailure,
    WorkerTimeout,
    classify_failure,
)
from repro.harness import cache as cache_mod
from repro.harness.cache import serialize_result
from repro.harness.experiment import (
    RunSpec,
    clear_cache,
    execution_count,
    run_matrix,
)
from repro.harness.faults import (
    ENV_FAULT_PLAN,
    FaultPlan,
    FaultRule,
    FaultTolerance,
    SpecOutcome,
    render_failure_summary,
    summarize_outcomes,
)
from repro.harness.parallel import ParallelRunner, _pool_entry

FAST = SimConfig(sm=SMConfig(num_sms=4))

SPECS = [
    RunSpec("STN", "baseline", 0.5, scale=0.25),
    RunSpec("NW", "baseline", 0.5, scale=0.25),
    RunSpec("HIS", "baseline", 0.5, scale=0.25),
]


def payload(result) -> dict:
    return dataclasses.asdict(result)


def set_plan(monkeypatch, *rules: dict) -> None:
    monkeypatch.setenv(ENV_FAULT_PLAN, json.dumps(list(rules)))


def run_clean_serial(specs=SPECS):
    clear_cache(disk=False)
    return run_matrix(specs, config=FAST, cache=None)


class TestTaxonomy:
    def test_classification(self):
        assert classify_failure(RuntimeError("boom")) == "simulation"
        assert classify_failure(OSError("disk")) == "simulation"
        assert classify_failure(SimulationError("state")) == "simulation"
        assert classify_failure(PoolError("pool")) == "harness"
        assert classify_failure(WorkerTimeout("x", 1.0)) == "harness"

    def test_worker_failure_pickles(self):
        failure = WorkerFailure.from_exception(
            "NW@50%/baseline", RuntimeError("boom"), remote_traceback="tb here"
        )
        clone = pickle.loads(pickle.dumps(failure))
        assert clone.label == failure.label
        assert clone.exc_type == "RuntimeError"
        assert clone.kind == "simulation"
        assert clone.remote_traceback == "tb here"
        assert "remote traceback" in str(clone)

    def test_worker_timeout_pickles(self):
        clone = pickle.loads(pickle.dumps(WorkerTimeout("NW@50%", 3.5)))
        assert (clone.label, clone.timeout_s) == ("NW@50%", 3.5)

    def test_hierarchy(self):
        # keep-going callers catch WorkerFailure; "except ReproError"
        # call sites keep working.
        assert issubclass(WorkerFailure, HarnessError)
        assert issubclass(PoolError, HarnessError)
        assert issubclass(HarnessError, ReproError)


class TestFaultPlan:
    def test_from_env_unset_is_none(self, monkeypatch):
        monkeypatch.delenv(ENV_FAULT_PLAN, raising=False)
        assert FaultPlan.from_env() is None

    def test_bad_json_raises(self):
        with pytest.raises(HarnessError):
            FaultPlan.from_json("not json")
        with pytest.raises(HarnessError):
            FaultPlan.from_json('{"not": "a list"}')
        with pytest.raises(HarnessError):
            FaultPlan.from_json('[{"match": "x", "action": "explode"}]')
        with pytest.raises(HarnessError):
            FaultPlan.from_json('[{"match": "x", "bogus_key": 1}]')

    def test_first_match_wins(self):
        plan = FaultPlan(
            [
                FaultRule(match="NW@", action="corrupt"),
                FaultRule(match="NW", action="hang"),
            ]
        )
        assert plan.rule_for("NW@50%/baseline").action == "corrupt"
        assert plan.rule_for("STN@50%/baseline") is None

    def test_once_flag_fires_once(self, tmp_path):
        rule = FaultRule(
            match="x", action="corrupt", once_flag=str(tmp_path / "flag")
        )
        assert rule.claim() is True
        assert rule.claim() is False

    def test_in_process_crash_degrades_to_raise(self):
        plan = FaultPlan([FaultRule(match="NW", action="crash")])
        with pytest.raises(RuntimeError, match="injected worker crash"):
            plan.apply("NW@50%", allow_hard_exit=False)


class TestOutcomes:
    def test_status_validated(self):
        with pytest.raises(HarnessError):
            SpecOutcome(label="x", status="exploded")

    def test_summarize_last_state_wins(self):
        outcomes = [
            SpecOutcome(label="a", status="failed"),
            SpecOutcome(label="b", status="ok"),
            SpecOutcome(label="a", status="ok", retries=1),
        ]
        final = summarize_outcomes(outcomes)
        assert final["a"].status == "ok"
        assert list(final) == ["a", "b"]

    def test_render_failure_summary(self):
        text = render_failure_summary(
            [
                SpecOutcome(label="a", status="ok"),
                SpecOutcome(
                    label="b",
                    status="failed",
                    retries=1,
                    error=WorkerFailure("b", "RuntimeError", "boom"),
                ),
            ]
        )
        assert "1 ok" in text and "1 failed" in text
        assert "failed: b (RuntimeError: boom) after 1 retry" in text


class TestRunnerValidation:
    def test_jobs_zero_or_negative_raise(self):
        with pytest.raises(ValueError):
            ParallelRunner(jobs=0)
        with pytest.raises(ValueError):
            ParallelRunner(jobs=-2)

    def test_duplicate_progress_counts_multiplicity_immediately(self):
        # Regression: duplicates used to flush only in a trailing
        # `while done < total` burst after the batch.  Now progress fires
        # once per *distinct* resolution, advancing by the spec's
        # multiplicity, so `done` never stalls below total mid-batch.
        specs = [SPECS[0], SPECS[0], SPECS[1]]
        seen = []
        clear_cache(disk=False)
        ParallelRunner(
            jobs=2, cache=None, progress=lambda d, t: seen.append((d, t))
        ).run(specs, config=FAST)
        assert len(seen) == 2  # one call per distinct spec, not per copy
        assert seen[-1] == (3, 3)
        dones = [d for d, _ in seen]
        assert dones == sorted(dones) and len(set(dones)) == len(dones)


class TestSimulationFailureSurfaces:
    """The _POOL_ERRORS regression: a worker-raised RuntimeError/OSError is
    a *simulation* failure — labelled, tracebacked, never a fallback."""

    @pytest.mark.parametrize("exc_type", ["RuntimeError", "OSError"])
    def test_worker_error_propagates_with_label_and_traceback(
        self, monkeypatch, exc_type
    ):
        set_plan(
            monkeypatch,
            {"match": "NW@", "action": "raise", "exc_type": exc_type,
             "message": "injected sim bug"},
        )
        clear_cache(disk=False)
        runner = ParallelRunner(jobs=2, cache=None)
        with pytest.raises(WorkerFailure) as excinfo:
            runner.run(SPECS, config=FAST)
        failure = excinfo.value
        assert failure.label == "NW@50%/baseline/x0.25"
        assert failure.exc_type == exc_type
        assert failure.kind == "simulation"
        assert "injected sim bug" in failure.message
        assert "--- remote traceback ---" in str(failure)
        # The crucial bit: the batch did NOT silently re-run serially.
        assert not runner.fell_back_serial
        assert runner.pool_retries == 0

    def test_serial_path_raises_identically(self, monkeypatch):
        set_plan(
            monkeypatch,
            {"match": "NW@", "action": "raise", "message": "injected sim bug"},
        )
        clear_cache(disk=False)
        with pytest.raises(WorkerFailure) as excinfo:
            ParallelRunner(jobs=1, cache=None).run(SPECS, config=FAST)
        assert excinfo.value.label == "NW@50%/baseline/x0.25"
        assert excinfo.value.kind == "simulation"


class TestKeepGoing:
    def test_other_specs_byte_identical_and_cache_untouched_by_failure(
        self, monkeypatch
    ):
        clean = run_clean_serial()
        cache = cache_mod.get_active_cache()
        set_plan(monkeypatch, {"match": "NW@", "action": "raise"})
        ft = FaultTolerance(keep_going=True)
        clear_cache(disk=False)
        results = run_matrix(SPECS, config=FAST, jobs=2, fault_tolerance=ft)
        assert results[SPECS[1].key()] is None
        for spec in (SPECS[0], SPECS[2]):
            assert serialize_result(results[spec.key()]) == serialize_result(
                clean[spec.key()]
            )
        # Only the two successful specs checkpointed; nothing poisoned.
        assert cache.stores == 2
        by_label = summarize_outcomes(ft.outcomes)
        assert by_label["NW@50%/baseline/x0.25"].status == "failed"
        assert by_label["NW@50%/baseline/x0.25"].error.kind == "simulation"
        statuses = sorted(o.status for o in by_label.values())
        assert statuses == ["failed", "ok", "ok"]

    def test_second_invocation_resumes_from_cache(self, monkeypatch):
        cache = cache_mod.get_active_cache()
        set_plan(monkeypatch, {"match": "NW@", "action": "raise"})
        ft = FaultTolerance(keep_going=True)
        run_matrix(SPECS, config=FAST, jobs=2, fault_tolerance=ft)
        assert cache.stores == 2

        # "Next session": fault fixed, in-process memo gone, disk survives.
        monkeypatch.delenv(ENV_FAULT_PLAN)
        clear_cache(disk=False)
        hits_before = cache.hits
        executed_before = execution_count()
        ft2 = FaultTolerance(keep_going=True)
        results = run_matrix(SPECS, config=FAST, fault_tolerance=ft2)
        assert all(results[s.key()] is not None for s in SPECS)
        # Zero re-simulations of the successful specs: both come from disk.
        assert cache.hits - hits_before == 2
        assert cache.stores == 3  # only NW simulated and stored
        assert execution_count() - executed_before == 1
        statuses = sorted(o.status for o in summarize_outcomes(ft2.outcomes).values())
        assert statuses == ["ok", "ok", "ok"]

    def test_serial_and_parallel_outcome_parity(self, monkeypatch):
        set_plan(monkeypatch, {"match": "NW@", "action": "raise"})

        def outcomes_at(jobs):
            clear_cache(disk=False)
            ft = FaultTolerance(keep_going=True)
            results = run_matrix(
                SPECS, config=FAST, cache=None, jobs=jobs, fault_tolerance=ft
            )
            return (
                {s.key(): results[s.key()] is None for s in SPECS},
                {
                    label: o.status
                    for label, o in summarize_outcomes(ft.outcomes).items()
                },
            )

        assert outcomes_at(1) == outcomes_at(2)


class TestCrashedWorker:
    def test_crash_breaks_pool_then_retries_succeed(self, monkeypatch, tmp_path):
        set_plan(
            monkeypatch,
            {"match": "NW@", "action": "crash",
             "once_flag": str(tmp_path / "crash-once")},
        )
        clear_cache(disk=False)
        ft = FaultTolerance(keep_going=True, retries=2, backoff_s=0.01)
        runner = ParallelRunner(jobs=2, cache=None, fault_tolerance=ft)
        results = runner.run(SPECS, config=FAST)
        assert all(r is not None for r in results)
        assert runner.pool_retries >= 1
        by_label = summarize_outcomes(ft.outcomes)
        nw = by_label["NW@50%/baseline/x0.25"]
        assert nw.status == "retried"
        assert nw.retries >= 1

    def test_persistent_crash_falls_back_serial_with_failure(self, monkeypatch):
        # No once_flag: the crash repeats until the retry budget is spent,
        # then the serial fallback degrades it to a raised error (a failed
        # outcome), and the other specs still complete.
        set_plan(monkeypatch, {"match": "NW@", "action": "crash"})
        clear_cache(disk=False)
        ft = FaultTolerance(keep_going=True, retries=1, backoff_s=0.01)
        runner = ParallelRunner(jobs=2, cache=None, fault_tolerance=ft)
        results = runner.run(SPECS, config=FAST)
        assert runner.fell_back_serial
        by_label = summarize_outcomes(ft.outcomes)
        assert by_label["NW@50%/baseline/x0.25"].status == "failed"
        assert [r is None for r in results] == [False, True, False]


class TestHungWorker:
    def test_hang_reaped_as_timed_out(self, monkeypatch):
        set_plan(monkeypatch, {"match": "NW@", "action": "hang", "hang_s": 120})
        clear_cache(disk=False)
        ft = FaultTolerance(
            keep_going=True, retries=1, timeout_s=3.0, backoff_s=0.01
        )
        runner = ParallelRunner(jobs=2, cache=None, fault_tolerance=ft)
        results = runner.run(SPECS, config=FAST)
        by_label = summarize_outcomes(ft.outcomes)
        nw = by_label["NW@50%/baseline/x0.25"]
        assert nw.status == "timed_out"
        assert nw.error.exc_type == "WorkerTimeout"
        assert runner.timed_out == 1
        assert [r is None for r in results] == [False, True, False]


class TestPoisonedResult:
    def test_corrupt_payload_rejected_and_kept_out_of_cache(self, monkeypatch):
        cache = cache_mod.get_active_cache()
        set_plan(monkeypatch, {"match": "NW@", "action": "corrupt"})
        clear_cache(disk=False)
        ft = FaultTolerance(keep_going=True)
        runner = ParallelRunner(jobs=2, fault_tolerance=ft)
        results = runner.run(SPECS, config=FAST)
        assert [r is None for r in results] == [False, True, False]
        by_label = summarize_outcomes(ft.outcomes)
        nw = by_label["NW@50%/baseline/x0.25"]
        assert nw.status == "failed"
        assert nw.error.exc_type == "CorruptedResult"
        assert cache.stores == 2  # the garbage payload never reached disk
        # ... and a fresh, fault-free lookup re-simulates NW from scratch.
        monkeypatch.delenv(ENV_FAULT_PLAN)
        clear_cache(disk=False)
        fresh = run_matrix([SPECS[1]], config=FAST)
        assert fresh[SPECS[1].key()] is not None


class TestGuardedEntry:
    def test_pool_entry_never_raises(self, monkeypatch):
        set_plan(monkeypatch, {"match": "NW@", "action": "raise"})
        reply = _pool_entry(SPECS[1], FAST, in_worker=False)
        assert reply.failure is not None
        assert reply.failure.kind == "simulation"
        ok = _pool_entry(SPECS[0], FAST, in_worker=False)
        assert ok.failure is None and ok.payload is not None

    def test_summary_includes_failure_counters(self, monkeypatch):
        set_plan(monkeypatch, {"match": "NW@", "action": "raise"})
        clear_cache(disk=False)
        runner = ParallelRunner(
            jobs=2, cache=None, fault_tolerance=FaultTolerance(keep_going=True)
        )
        runner.run(SPECS, config=FAST)
        summary = runner.summary()
        assert summary["failed"] == 1
        assert summary["timed_out"] == 0
        assert summary["fell_back_serial"] is False


class TestObsIntegration:
    def test_worker_failure_event_and_counter(self, monkeypatch):
        from repro.obs import Observability

        set_plan(monkeypatch, {"match": "NW@", "action": "raise"})
        clear_cache(disk=False)
        obs = Observability.enabled_()
        runner = ParallelRunner(
            jobs=2, cache=None, fault_tolerance=FaultTolerance(keep_going=True)
        )
        runner.run(SPECS, config=FAST, obs=obs)
        events = obs.tracer.of_kind("worker_failure")
        assert len(events) == 1
        assert events[0].args["label"] == "NW@50%/baseline/x0.25"
        assert events[0].args["status"] == "failed"
        snapshot = obs.metrics.snapshot()
        assert snapshot["harness/worker_failures"]["value"] == 1


class TestSweepKeepGoing:
    def test_failed_point_dropped_and_recorded(self, monkeypatch):
        from repro.analysis.sweep import capacity_sweep

        set_plan(monkeypatch, {"match": "STN@50%", "action": "raise"})
        sweep = capacity_sweep(
            "STN", "baseline", rates=(1.0, 0.75, 0.5), scale=0.25,
            fault_tolerance=FaultTolerance(keep_going=True),
        )
        assert sweep.failures == [0.5]
        assert [p.rate for p in sweep.points] == [1.0, 0.75]

    def test_failed_anchor_raises(self, monkeypatch):
        from repro.analysis.sweep import capacity_sweep

        set_plan(monkeypatch, {"match": "STN@unl", "action": "raise"})
        with pytest.raises(HarnessError, match="anchor"):
            capacity_sweep(
                "STN", "baseline", rates=(1.0, 0.5), scale=0.25,
                fault_tolerance=FaultTolerance(keep_going=True),
            )


class TestFigureKeepGoing:
    def test_fig3_failed_app_yields_none_series_entries(self, monkeypatch):
        from repro.harness import figures

        set_plan(monkeypatch, {"match": "NW@", "action": "raise"})
        result = figures.fig3(
            apps=["STN", "NW"], scale=0.25,
            fault_tolerance=FaultTolerance(keep_going=True),
        )
        assert result.series["random"]["NW"] is None
        assert result.series["random"]["STN"] is not None


class TestCliRegen:
    def test_keep_going_exits_1_with_summary(self, monkeypatch, capsys):
        from repro.cli import main

        set_plan(monkeypatch, {"match": "NW@", "action": "raise"})
        code = main(
            ["regen", "fig3", "--apps", "STN", "NW", "--scale", "0.25",
             "--keep-going"]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "failure summary:" in err
        assert "NW@50%/baseline/x0.25" in err

    def test_fail_fast_raises_without_keep_going(self, monkeypatch):
        from repro.cli import main

        set_plan(monkeypatch, {"match": "NW@", "action": "raise"})
        # Fault injection is a ParallelRunner contract, so engage the pool.
        with pytest.raises(WorkerFailure):
            main(["regen", "fig3", "--apps", "STN", "NW", "--scale", "0.25",
                  "-j", "2"])


class TestBackoffClamp:
    """Regression: the pool-rebuild backoff schedule is clamped.

    ``backoff_s * 2**(attempt-1)`` used to grow without bound, so a
    generous ``retries`` budget meant a crashing worker could stall the
    runner (and the experiment service's single drain thread) for minutes
    between rebuilds.  ``max_backoff_s`` caps every single sleep.
    """

    def test_exponential_then_clamped(self):
        ft = FaultTolerance(backoff_s=0.05, max_backoff_s=0.2)
        delays = [ft.backoff_delay(attempt) for attempt in range(1, 7)]
        assert delays == pytest.approx([0.05, 0.1, 0.2, 0.2, 0.2, 0.2])

    def test_deep_attempt_stays_bounded_at_default(self):
        ft = FaultTolerance()
        # Pre-clamp, attempt 20 meant 0.05 * 2**19 ≈ 26214 seconds.
        assert ft.backoff_delay(20) == ft.max_backoff_s == 2.0
        assert all(ft.backoff_delay(a) <= 2.0 for a in range(1, 64))

    def test_cap_below_base_applies_immediately(self):
        ft = FaultTolerance(backoff_s=1.0, max_backoff_s=0.01)
        assert ft.backoff_delay(1) == pytest.approx(0.01)

    def test_attempts_before_one_sleep_zero(self):
        ft = FaultTolerance()
        assert ft.backoff_delay(0) == 0.0
        assert ft.backoff_delay(-3) == 0.0

    def test_zero_cap_disables_sleeping(self):
        ft = FaultTolerance(backoff_s=0.5, max_backoff_s=0.0)
        assert all(ft.backoff_delay(a) == 0.0 for a in range(1, 8))

    def test_pool_rebuild_sleeps_are_clamped(self, monkeypatch, tmp_path):
        """The runner's actual sleeps respect the clamp under crash retries."""
        from repro.harness import parallel as parallel_mod

        recorded = []
        monkeypatch.setattr(
            parallel_mod.time, "sleep", lambda s: recorded.append(s)
        )
        set_plan(
            monkeypatch,
            {"match": "STN@", "action": "crash",
             "once_flag": str(tmp_path / "crash-once")},
        )
        ft = FaultTolerance(keep_going=True, retries=2,
                            backoff_s=4.0, max_backoff_s=0.01)
        runner = ParallelRunner(jobs=2, cache=None, fault_tolerance=ft)
        runner.run([SPECS[0]], config=FAST)
        assert recorded, "a crashed worker must trigger a backoff sleep"
        assert all(delay <= 0.01 for delay in recorded)
