"""Edge-case equivalence and cache-key identity for the array backend.

The differential matrix (``tests/test_backend_differential.py``) covers
the broad policy × rate × app space; these tests pin the narrow spots
where a flat-array representation is most likely to diverge from the
object graph:

* a footprint whose tail chunk is partial (``footprint % 64 != 0``) —
  mask arithmetic must not touch pages past the tail;
* zero oversubscription — the eviction path never runs, so install/touch
  alone must already be identical;
* an access pattern straddling a 64-page chunk boundary under the
  tree/pattern prefetcher — prefetch masks span two chunks;
* cache-key identity — ``backend`` is elided from both fingerprints, so
  an entry cached under one backend must be a hit under the other.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.config import SimConfig, SMConfig
from repro.engine.simulator import Simulator
from repro.harness.baselines import build_setup
from repro.harness.cache import (
    _PICKLE_PROTOCOL,
    ResultCache,
    config_fingerprint,
    spec_fingerprint,
)
from repro.harness.experiment import RunSpec
from repro.workloads.base import Workload

FAST = SimConfig(sm=SMConfig(num_sms=4))


def _both_backends(workload, rate, setup="cppe"):
    out = []
    for backend in ("object", "array"):
        policy, prefetcher = build_setup(setup)
        result = Simulator(
            workload,
            policy=policy,
            prefetcher=prefetcher,
            oversubscription=rate,
            config=FAST.with_(backend=backend),
        ).run()
        out.append(pickle.dumps(result, protocol=_PICKLE_PROTOCOL))
    return out


class TestPartialTailChunk:
    def test_footprint_not_a_multiple_of_chunk(self):
        # 40-page footprint: the single chunk is partial; with rate 0.5 the
        # eviction path runs over a partial resident mask too.
        footprint = 40
        sweep = np.arange(footprint, dtype=np.int64)
        for rate in (None, 0.5):
            workload = Workload(
                name="tail",
                pattern_type="I",
                footprint_pages=footprint,
                accesses=np.concatenate([sweep] * 4),
            )
            obj, arr = _both_backends(workload, rate)
            assert obj == arr, f"divergence at rate={rate}"

    def test_tail_chunk_straddling_capacity(self):
        # 200 pages = 3 chunks + a 8-page tail; capacity forces the tail
        # chunk through eviction and re-migration.
        footprint = 200
        sweep = np.arange(footprint, dtype=np.int64)
        workload = Workload(
            name="tail2",
            pattern_type="IV",
            footprint_pages=footprint,
            accesses=np.concatenate([sweep] * 5),
        )
        obj, arr = _both_backends(workload, 0.6, setup="baseline")
        assert obj == arr


class TestZeroOversubscription:
    def test_no_eviction_run_is_identical(self):
        footprint = 192
        rng_pattern = np.concatenate(
            [np.arange(footprint, dtype=np.int64)] * 3
        )
        workload = Workload(
            name="fits",
            pattern_type="I",
            footprint_pages=footprint,
            accesses=rng_pattern,
        )
        obj, arr = _both_backends(workload, None)
        assert obj == arr


class TestIntervalBoundaryStraddle:
    def test_accesses_straddling_chunk_boundaries(self):
        # Alternate across the 64-page boundary between chunks 0 and 1 and
        # between chunks 2 and 3: the pattern prefetcher sees strides that
        # cross chunk edges, so prefetch masks land in two chunks at once.
        pairs = []
        for base in (60, 124, 188):
            for offset in range(8):
                pairs.append(base + offset)
        accesses = np.array(pairs * 6, dtype=np.int64)
        workload = Workload(
            name="straddle",
            pattern_type="II",
            footprint_pages=256,
            accesses=accesses,
        )
        for rate in (None, 0.5):
            obj, arr = _both_backends(workload, rate, setup="cppe")
            assert obj == arr, f"divergence at rate={rate}"


class TestCacheKeyIdentity:
    def test_backend_excluded_from_fingerprints(self):
        obj_cfg = SimConfig(backend="object")
        arr_cfg = SimConfig(backend="array")
        assert config_fingerprint(obj_cfg) == config_fingerprint(arr_cfg)
        spec = RunSpec("NW", "cppe", 0.5, scale=0.25)
        assert spec_fingerprint(spec, obj_cfg) == spec_fingerprint(spec, arr_cfg)

    def test_other_fields_still_change_the_key(self):
        # The elision must be surgical: everything else still keys.
        assert config_fingerprint(SimConfig()) != config_fingerprint(
            SimConfig(seed=1234)
        )

    def test_cross_backend_cache_hit(self, tmp_path):
        # A result stored under the object backend must be served to an
        # array-backend request (and vice versa): the backends are proven
        # byte-identical, so sharing entries is both safe and the point.
        cache = ResultCache(tmp_path)
        spec = RunSpec("NW", "cppe", 0.5, scale=0.25)
        from repro.harness.baselines import build_setup as _setup
        from repro.workloads.suite import make_workload

        policy, prefetcher = _setup("cppe")
        result = Simulator(
            make_workload("NW", scale=0.25),
            policy=policy,
            prefetcher=prefetcher,
            oversubscription=0.5,
            config=FAST.with_(backend="object"),
        ).run()
        cache.put(spec, FAST.with_(backend="object"), result)
        hit = cache.get(spec, FAST.with_(backend="array"))
        assert hit is not None
        assert pickle.dumps(hit, protocol=_PICKLE_PROTOCOL) == pickle.dumps(
            result, protocol=_PICKLE_PROTOCOL
        )
        assert cache.hits == 1 and cache.misses == 0

    def test_invalid_backend_rejected(self):
        with pytest.raises(Exception):
            SimConfig(backend="simd")
