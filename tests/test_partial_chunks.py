"""Partial-chunk residency: the pattern prefetcher migrates subsets of a
chunk, so the GMMU must handle chunks that are only partially resident —
the Fig. 6 flow end to end."""

import numpy as np

from repro.config import (
    PatternBufferConfig,
    SimConfig,
    SMConfig,
    TranslationConfig,
)
from repro.engine.events import EventQueue
from repro.engine.stats import SimStats
from repro.memsim.fault import FarFault
from repro.memsim.gmmu import GMMU
from repro.policies.lru import LRUPolicy
from repro.prefetch.pattern_aware import PatternAwarePrefetcher

FAST = SimConfig(sm=SMConfig(num_sms=2), translation=TranslationConfig(enabled=False))

EVEN_MASK = 0x5555


def make_gmmu_with_pattern(capacity=256):
    events = EventQueue()
    prefetcher = PatternAwarePrefetcher(
        PatternBufferConfig(deletion_scheme=2, lru_only=False)
    )
    gmmu = GMMU(
        config=FAST, capacity_frames=capacity, events=events,
        stats=SimStats(), policy=LRUPolicy(), prefetcher=prefetcher,
    )
    # Seed the pattern buffer directly with an even-stride pattern for
    # chunk 2 (pages 32..47).
    prefetcher.on_chunk_evicted(2, EVEN_MASK, untouch_level=8, strategy="lru")
    return gmmu, events, prefetcher


def issue(gmmu, vpn, time=0):
    gmmu.handle_fault(
        FarFault(vpn=vpn, sm_id=0, time=time, is_write=False,
                 on_resolve=lambda t: None)
    )


class TestPartialMigration:
    def test_pattern_match_installs_partial_chunk(self):
        gmmu, events, _ = make_gmmu_with_pattern()
        issue(gmmu, 32)  # even page: matches
        events.run()
        entry = gmmu.chain.get(2)
        assert entry.resident_pages == 8
        for i in range(16):
            assert gmmu.is_resident(32 + i) == (i % 2 == 0)
        assert gmmu.stats.pages_migrated == 8

    def test_hole_fault_fetches_rest_of_chunk(self):
        gmmu, events, _ = make_gmmu_with_pattern()
        issue(gmmu, 32)
        events.run()
        issue(gmmu, 33, time=events.now)  # odd page: a hole, mismatch
        events.run()
        entry = gmmu.chain.get(2)
        assert entry.resident_pages == 16  # rest of the chunk arrived
        assert gmmu.stats.pages_migrated == 16  # 8 + 8, never re-migrated

    def test_partial_chunk_eviction_frees_only_resident(self):
        gmmu, events, _ = make_gmmu_with_pattern(capacity=64)
        issue(gmmu, 32)  # partial chunk: 8 pages
        events.run()
        # Fill the rest of memory with 3 full chunks, then one more to force
        # eviction of the partial chunk (LRU head).
        for chunk in (10, 11, 12):
            issue(gmmu, chunk * 16, time=events.now)
            events.run()
        free_before = gmmu.device.free_frames
        issue(gmmu, 13 * 16, time=events.now)
        events.run()
        assert gmmu.chain.get(2) is None
        assert gmmu.stats.pages_evicted >= 8
        assert gmmu.device.allocated_frames <= 64

    def test_scheme2_keeps_entry_after_hole_fault(self):
        gmmu, events, prefetcher = make_gmmu_with_pattern()
        issue(gmmu, 32)            # first lookup: match
        events.run()
        issue(gmmu, 33, time=events.now)  # mismatch, but first matched
        events.run()
        assert 2 in prefetcher.buffer  # Fig. 6 Scheme-2 behaviour

    def test_untouch_level_counts_only_migrated_pages(self):
        gmmu, events, _ = make_gmmu_with_pattern(capacity=64)
        issue(gmmu, 32)
        events.run()
        # Touch only two of the eight migrated pages.
        gmmu.touch_page(0, 32, False, events.now)
        gmmu.touch_page(0, 34, False, events.now)
        for chunk in (10, 11, 12):
            issue(gmmu, chunk * 16, time=events.now)
            events.run()
        issue(gmmu, 13 * 16, time=events.now)
        events.run()
        # Evicted partial chunk had 8 resident pages, 2 touched -> 6.
        assert gmmu.stats.untouch_total == 0  # LRU policy: no MHPE stats
        # The prefetcher, however, saw the pattern with untouch 6 via the
        # coordination hook; verify through prefetch accuracy accounting.
        assert gmmu.stats.prefetched_pages_touched >= 1
