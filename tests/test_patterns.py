"""Access-pattern generators (repro.workloads.patterns)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import patterns


def unique_count(arr):
    return np.unique(arr).size


class TestStreaming:
    def test_single_pass_sequential(self):
        acc, writes = patterns.streaming(100, sweeps=1, touches_per_page=1)
        assert list(acc) == list(range(100))
        assert writes.shape == acc.shape

    def test_touches_per_page_repeats_consecutively(self):
        acc, _ = patterns.streaming(10, sweeps=1, touches_per_page=3)
        assert list(acc[:6]) == [0, 0, 0, 1, 1, 1]

    def test_skip_fraction_leaves_pages_untouched(self):
        acc, _ = patterns.streaming(1000, sweeps=1, skip_fraction=0.3, seed=1)
        assert unique_count(acc) < 1000
        assert unique_count(acc) > 500

    def test_deterministic(self):
        a1, w1 = patterns.streaming(100, skip_fraction=0.2, seed=5)
        a2, w2 = patterns.streaming(100, skip_fraction=0.2, seed=5)
        assert np.array_equal(a1, a2) and np.array_equal(w1, w2)

    def test_invalid_args(self):
        with pytest.raises(WorkloadError):
            patterns.streaming(0)
        with pytest.raises(WorkloadError):
            patterns.streaming(10, sweeps=0)
        with pytest.raises(WorkloadError):
            patterns.streaming(10, skip_fraction=1.0)


class TestPartlyRepetitive:
    def test_contains_hot_region_repeats(self):
        acc, _ = patterns.partly_repetitive(
            100, hot_fraction=0.1, hot_repeats=5, sweeps=2
        )
        counts = np.bincount(acc, minlength=100)
        # Hot pages (0-9) touched in both sweeps plus 5 hot repeats.
        assert counts[0] == 2 + 5
        assert counts[50] == 2

    def test_invalid_hot_fraction(self):
        with pytest.raises(WorkloadError):
            patterns.partly_repetitive(10, hot_fraction=0.0)


class TestMostlyRepetitive:
    def test_stride_touches_only_multiples(self):
        acc, _ = patterns.mostly_repetitive(100, stride=4, repeats=2, phases=1)
        assert set(np.unique(acc)) == set(range(0, 100, 4))

    def test_phases_shift_offset(self):
        acc, _ = patterns.mostly_repetitive(100, stride=2, repeats=1, phases=2)
        # Phase 1 = even pages, phase 2 = odd pages.
        assert set(np.unique(acc)) == set(range(100))

    def test_frontier_is_irregular(self):
        acc, _ = patterns.mostly_repetitive(1000, frontier=True, seed=3)
        # Random frontier: far from sequential.
        diffs = np.abs(np.diff(acc.astype(np.int64)))
        assert np.median(diffs) > 10

    def test_frontier_deterministic(self):
        a1, _ = patterns.mostly_repetitive(500, frontier=True, seed=3)
        a2, _ = patterns.mostly_repetitive(500, frontier=True, seed=3)
        assert np.array_equal(a1, a2)

    def test_invalid_stride(self):
        with pytest.raises(WorkloadError):
            patterns.mostly_repetitive(100, stride=0)


class TestThrashing:
    def test_cyclic_sweeps(self):
        acc, _ = patterns.thrashing(50, sweeps=3, touches_per_page=1)
        assert len(acc) == 150
        assert list(acc[:50]) == list(range(50))
        assert list(acc[50:100]) == list(range(50))

    def test_requires_two_sweeps(self):
        with pytest.raises(WorkloadError):
            patterns.thrashing(50, sweeps=1)


class TestRepetitiveThrashing:
    def test_fixed_stride_offset_across_sweeps(self):
        acc, _ = patterns.repetitive_thrashing(
            100, stride=2, sweeps=3, hot_fraction=0.01, hot_repeats=1
        )
        # The strided sweep always touches even pages (fixed offset), so odd
        # pages beyond the hot region never appear.
        assert 51 not in set(np.unique(acc))

    def test_hot_region_interleaved(self):
        acc, _ = patterns.repetitive_thrashing(
            100, hot_fraction=0.1, hot_repeats=2, sweeps=2
        )
        counts = np.bincount(acc, minlength=100)
        assert counts[0] > counts[50]


class TestRegionMoving:
    def test_window_slides_forward(self):
        acc, _ = patterns.region_moving(
            200, window_pages=50, step=50, rounds_per_window=1, seed=0
        )
        # First 50 accesses stay in [0, 50).
        assert acc[:50].max() < 50
        # Later windows reach the end of the footprint.
        assert acc.max() >= 150

    def test_touch_fraction_sparsifies(self):
        acc, _ = patterns.region_moving(
            200, window_pages=100, step=100, rounds_per_window=1,
            touch_fraction=0.5, seed=0,
        )
        assert unique_count(acc) < 150

    def test_rounds_revisit_window(self):
        acc, _ = patterns.region_moving(
            100, window_pages=100, step=100, rounds_per_window=3, seed=0
        )
        counts = np.bincount(acc, minlength=100)
        assert (counts == 3).all()

    def test_invalid_args(self):
        with pytest.raises(WorkloadError):
            patterns.region_moving(100, window_pages=0)
        with pytest.raises(WorkloadError):
            patterns.region_moving(100, touch_fraction=0.0)


class TestWriteFlags:
    @pytest.mark.parametrize("fraction", [0.0, 0.3, 1.0])
    def test_write_fraction_approximate(self, fraction):
        acc, writes = patterns.thrashing(
            500, sweeps=4, write_fraction=fraction, seed=1
        )
        observed = writes.mean()
        assert abs(observed - fraction) < 0.05
