"""Pattern-aware prefetcher and pattern buffer (repro.prefetch.pattern_aware)."""

import pytest

from repro.config import PatternBufferConfig, SimConfig
from repro.prefetch.pattern_aware import (
    PatternAwarePrefetcher,
    PatternBuffer,
    PatternEntry,
)

from helpers import attach_prefetcher, never_skip

EVEN_MASK = 0x5555  # pages 0,2,4,... touched (stride 2)


def make_prefetcher(scheme=2, lru_only=True, min_untouch=8):
    pf = PatternAwarePrefetcher(
        PatternBufferConfig(
            deletion_scheme=scheme, lru_only=lru_only, min_untouch_level=min_untouch
        )
    )
    stats = attach_prefetcher(pf)
    return pf, stats


class TestPatternBuffer:
    def test_records_qualifying_chunk(self):
        buf = PatternBuffer(PatternBufferConfig())
        assert buf.record(5, EVEN_MASK, untouch_level=8)
        assert 5 in buf
        assert buf.get(5).touched_mask == EVEN_MASK

    def test_rejects_low_untouch(self):
        buf = PatternBuffer(PatternBufferConfig())
        assert not buf.record(5, EVEN_MASK, untouch_level=7)
        assert 5 not in buf

    def test_rejects_all_untouched_chunk(self):
        # A never-touched chunk has no pattern to replay.
        buf = PatternBuffer(PatternBufferConfig())
        assert not buf.record(5, 0x0000, untouch_level=16)

    def test_capacity_evicts_fifo(self):
        buf = PatternBuffer(PatternBufferConfig(max_entries=2))
        buf.record(1, EVEN_MASK, 8)
        buf.record(2, EVEN_MASK, 8)
        buf.record(3, EVEN_MASK, 8)
        assert 1 not in buf and 2 in buf and 3 in buf

    def test_re_record_moves_to_fifo_tail(self):
        # Regression: re-recording an already-present chunk must refresh its
        # FIFO position.  Plain dict reassignment kept the original
        # insertion slot, so the *freshest* pattern was the next evicted.
        buf = PatternBuffer(PatternBufferConfig(max_entries=2))
        buf.record(1, EVEN_MASK, 8)
        buf.record(2, EVEN_MASK, 8)
        buf.record(1, 0x3333, 8)  # refresh: chunk 1 is now the newest
        buf.record(3, EVEN_MASK, 8)  # at capacity: oldest (2) must go
        assert 2 not in buf
        assert 1 in buf and 3 in buf
        assert buf.get(1).touched_mask == 0x3333

    def test_re_record_resets_lookup_state(self):
        buf = PatternBuffer(PatternBufferConfig())
        buf.record(1, EVEN_MASK, 8)
        entry = buf.get(1)
        entry.looked_up = True
        entry.first_matched = True
        buf.record(1, EVEN_MASK, 8)
        refreshed = buf.get(1)
        assert not refreshed.looked_up and not refreshed.first_matched

    def test_peak_tracking(self):
        buf = PatternBuffer(PatternBufferConfig())
        buf.record(1, EVEN_MASK, 8)
        buf.record(2, EVEN_MASK, 8)
        buf.delete(1)
        assert buf.peak == 2

    def test_scheme1_deletes_on_any_mismatch(self):
        buf = PatternBuffer(PatternBufferConfig(deletion_scheme=1))
        buf.record(1, EVEN_MASK, 8)
        entry = buf.get(1)
        entry.first_matched = True  # had a prior match
        buf.handle_mismatch(entry)
        assert 1 not in buf

    def test_scheme2_keeps_after_first_match(self):
        buf = PatternBuffer(PatternBufferConfig(deletion_scheme=2))
        buf.record(1, EVEN_MASK, 8)
        entry = buf.get(1)
        entry.first_matched = True
        buf.handle_mismatch(entry)
        assert 1 in buf

    def test_scheme2_deletes_on_first_lookup_mismatch(self):
        buf = PatternBuffer(PatternBufferConfig(deletion_scheme=2))
        buf.record(1, EVEN_MASK, 8)
        buf.handle_mismatch(buf.get(1))  # first lookup never matched
        assert 1 not in buf


class TestCoordination:
    def test_records_only_under_lru(self):
        pf, stats = make_prefetcher(lru_only=True)
        pf.on_chunk_evicted(5, EVEN_MASK, 8, strategy="mru")
        assert 5 not in pf.buffer
        pf.on_chunk_evicted(5, EVEN_MASK, 8, strategy="lru")
        assert 5 in pf.buffer
        assert stats.pattern_inserts == 1

    def test_lru_only_disabled_records_any_strategy(self):
        pf, _ = make_prefetcher(lru_only=False)
        pf.on_chunk_evicted(5, EVEN_MASK, 8, strategy="mru")
        assert 5 in pf.buffer

    def test_min_untouch_filter(self):
        pf, _ = make_prefetcher()
        pf.on_chunk_evicted(5, 0xFFF0, 4, strategy="lru")
        assert 5 not in pf.buffer


class TestPrefetchDecision:
    def test_unknown_chunk_migrates_whole_chunk(self):
        pf, _ = make_prefetcher()
        pages = pf.pages_to_migrate(35, True, never_skip)
        assert sorted(pages) == list(range(32, 48))

    def test_pattern_match_migrates_only_touched_pages(self):
        pf, stats = make_prefetcher()
        pf.on_chunk_evicted(2, EVEN_MASK, 8, strategy="lru")
        pages = pf.pages_to_migrate(32, True, never_skip)  # page 0: even -> match
        assert sorted(pages) == [32 + i for i in range(0, 16, 2)]
        assert stats.pattern_hits == 1
        assert stats.pattern_prefetches == 7

    def test_pattern_mismatch_migrates_whole_chunk(self):
        pf, stats = make_prefetcher()
        pf.on_chunk_evicted(2, EVEN_MASK, 8, strategy="lru")
        pages = pf.pages_to_migrate(33, True, never_skip)  # page 1: odd -> mismatch
        assert sorted(pages) == list(range(32, 48))
        assert stats.pattern_mismatches == 1
        assert 2 not in pf.buffer  # scheme-2, first lookup mismatched

    def test_fig6_scheme2_sequence(self):
        """The Fig. 6 example: first lookup matches, second mismatches;
        Scheme-2 keeps the entry, Scheme-1 deletes it."""
        for scheme, kept in ((1, False), (2, True)):
            pf, _ = make_prefetcher(scheme=scheme)
            pf.on_chunk_evicted(2, EVEN_MASK, 8, strategy="lru")
            pf.pages_to_migrate(32, True, never_skip)  # match (even page)
            pf.pages_to_migrate(33, True, never_skip)  # mismatch (odd page)
            assert (2 in pf.buffer) is kept, f"scheme {scheme}"

    def test_match_excludes_resident_pages(self):
        pf, _ = make_prefetcher()
        pf.on_chunk_evicted(2, EVEN_MASK, 8, strategy="lru")
        resident = {34, 36}
        pages = pf.pages_to_migrate(32, True, lambda v: v in resident)
        assert 34 not in pages and 36 not in pages
        assert 32 in pages

    def test_name_reflects_scheme(self):
        pf, _ = make_prefetcher(scheme=1)
        assert pf.name == "pattern-aware/s1"
        pf2, _ = make_prefetcher(scheme=2)
        assert pf2.name == "pattern-aware/s2"

    def test_buffer_length_samples_recorded(self):
        pf, stats = make_prefetcher()
        pf.on_chunk_evicted(1, EVEN_MASK, 8, strategy="lru")
        pf.on_chunk_evicted(2, EVEN_MASK, 8, strategy="lru")
        assert stats.pattern_buffer_len_samples == [1, 2]
        assert stats.pattern_buffer_peak == 2
