"""MHPE — Algorithm 1 (repro.policies.mhpe)."""

import pytest

from repro.config import MHPEConfig, SimConfig
from repro.engine.stats import IntervalRecord
from repro.memsim.chunk_chain import ChunkEntry
from repro.policies.mhpe import MHPEPolicy, untouch_bucket

from helpers import IntervalClock, attach_policy, full_entry, populate


def evicted_entry(chunk_id, untouch):
    """A fully migrated chunk with ``untouch`` untouched pages."""
    touched = (1 << (16 - untouch)) - 1
    return full_entry(chunk_id, touched=touched)


def end_interval(policy, index=0, time=0):
    record = IntervalRecord(index=index)
    policy.on_interval_end(record, time)
    return record


class TestUntouchBucket:
    def test_paper_ranges(self):
        # [0-3]=0, [4-10]=1, [11-17]=2, [18-24]=3, [25-31]=4 (Section VI-A).
        assert untouch_bucket(0) == 0
        assert untouch_bucket(3) == 0
        assert untouch_bucket(4) == 1
        assert untouch_bucket(10) == 1
        assert untouch_bucket(11) == 2
        assert untouch_bucket(17) == 2
        assert untouch_bucket(18) == 3
        assert untouch_bucket(24) == 3
        assert untouch_bucket(25) == 4
        assert untouch_bucket(31) == 4

    def test_at_or_above_t1_saturates(self):
        assert untouch_bucket(32) == 4
        assert untouch_bucket(1000) == 4

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            untouch_bucket(-1)


class TestInitialForwardDistance:
    def _fd_for_chain(self, n_chunks):
        policy = MHPEPolicy()
        attach_policy(policy)
        populate(policy, list(range(n_chunks)))
        policy.on_memory_full(time=0)
        return policy.forward_distance

    def test_clamped_low(self):
        # chain_len // 100 == 0 -> clamp to 2.
        assert self._fd_for_chain(50) == 2

    def test_in_range(self):
        assert self._fd_for_chain(400) == 4

    def test_clamped_high(self):
        assert self._fd_for_chain(2000) == 8

    def test_memory_full_idempotent(self):
        policy = MHPEPolicy()
        attach_policy(policy)
        populate(policy, list(range(400)))
        policy.on_memory_full(0)
        policy.forward_distance = 99
        policy.on_memory_full(1)  # second call must not recompute
        assert policy.forward_distance == 99


class TestEvictedBufferSizing:
    def test_minimum_is_8(self):
        policy = MHPEPolicy()
        _, stats, _ = attach_policy(policy)
        populate(policy, list(range(10)))
        policy.on_memory_full(0)
        assert stats.evicted_buffer_length == 8

    def test_scales_with_chain(self):
        policy = MHPEPolicy()
        _, stats, _ = attach_policy(policy)
        populate(policy, list(range(200)))
        policy.on_memory_full(0)
        # max(8, 8 * (200 // 64)) = 24.
        assert stats.evicted_buffer_length == 24


class TestStrategySwitch:
    def _full_policy(self, **cfg):
        policy = MHPEPolicy(MHPEConfig(**cfg)) if cfg else MHPEPolicy()
        chain, stats, clock = attach_policy(policy)
        populate(policy, list(range(8)))
        policy.on_memory_full(0)
        return policy, stats

    def test_starts_with_mru(self):
        policy, _ = self._full_policy()
        assert policy.strategy == "mru"
        assert policy.current_strategy == "mru"

    def test_t1_switches_in_one_interval(self):
        policy, stats = self._full_policy()
        policy.on_chunk_evicted(evicted_entry(100, 16), 0)
        policy.on_chunk_evicted(evicted_entry(101, 16), 0)
        end_interval(policy)  # U1 = 32 >= T1
        assert policy.strategy == "lru"
        assert stats.strategy_switch_time is not None

    def test_below_t1_no_switch(self):
        policy, _ = self._full_policy()
        policy.on_chunk_evicted(evicted_entry(100, 16), 0)
        end_interval(policy)  # U1 = 16 < 32
        assert policy.strategy == "mru"

    def test_t2_cumulative_switch_at_fourth_interval(self):
        policy, _ = self._full_policy()
        # 12 untouch per interval: below T1 but 48 >= T2 cumulatively.
        for i in range(4):
            policy.on_chunk_evicted(evicted_entry(100 + i, 12), 0)
            end_interval(policy, index=i)
        assert policy.strategy == "lru"

    def test_t2_not_checked_after_fourth_interval(self):
        policy, _ = self._full_policy()
        for i in range(4):
            policy.on_chunk_evicted(evicted_entry(100 + i, 8), 0)
            end_interval(policy, index=i)
        assert policy.strategy == "mru"  # 32 < 40 at 4th interval
        # Interval 5 onward: high cumulative total must NOT trigger T2.
        policy.on_chunk_evicted(evicted_entry(200, 10), 0)
        policy.on_chunk_evicted(evicted_entry(201, 10), 0)
        end_interval(policy, index=4)
        assert policy.strategy == "mru"

    def test_switch_is_one_way(self):
        policy, _ = self._full_policy()
        policy.on_chunk_evicted(evicted_entry(100, 16), 0)
        policy.on_chunk_evicted(evicted_entry(101, 16), 0)
        end_interval(policy)
        assert policy.strategy == "lru"
        # Quiet intervals afterwards never switch back to MRU.
        for i in range(5):
            end_interval(policy, index=i + 1)
        assert policy.strategy == "lru"

    def test_switch_disabled_flag(self):
        policy, _ = self._full_policy(switch_enabled=False)
        policy.on_chunk_evicted(evicted_entry(100, 16), 0)
        policy.on_chunk_evicted(evicted_entry(101, 16), 0)
        end_interval(policy)
        assert policy.strategy == "mru"

    def test_no_adaptation_before_memory_full(self):
        policy = MHPEPolicy()
        attach_policy(policy)
        populate(policy, list(range(8)))
        end_interval(policy)  # memory never filled
        assert policy.strategy == "mru"
        assert policy.forward_distance == 0


class TestForwardDistanceAdjustment:
    def _policy(self, **cfg):
        policy = MHPEPolicy(MHPEConfig(**cfg)) if cfg else MHPEPolicy()
        attach_policy(policy)
        populate(policy, list(range(8)))
        policy.on_memory_full(0)
        return policy

    def test_grows_by_untouch_bucket(self):
        policy = self._policy()
        start = policy.forward_distance
        policy.on_chunk_evicted(evicted_entry(100, 12), 0)  # U1=12 -> bucket 2
        end_interval(policy)
        assert policy.forward_distance == start + 2

    def test_grows_by_wrong_evictions_when_larger(self):
        policy = self._policy()
        start = policy.forward_distance
        policy.on_chunk_evicted(evicted_entry(100, 0), 0)
        # Three wrong evictions (W=3) beats bucket(0)=0.
        for cid in (7, 8, 9):
            policy.on_chunk_evicted(evicted_entry(cid, 0), 0)
            policy.on_fault(cid * 16, cid, 0)
        end_interval(policy)
        assert policy.forward_distance == start + 3

    def test_max_not_sum(self):
        policy = self._policy()
        start = policy.forward_distance
        policy.on_chunk_evicted(evicted_entry(100, 12), 0)  # bucket 2
        policy.on_chunk_evicted(evicted_entry(7, 0), 0)
        policy.on_fault(7 * 16, 7, 0)  # W = 1
        end_interval(policy)
        assert policy.forward_distance == start + 2  # max(2, 1), not 3

    def test_t3_limit_stops_growth(self):
        policy = self._policy()
        policy.forward_distance = 33  # above T3 = 32
        policy.on_chunk_evicted(evicted_entry(100, 12), 0)
        end_interval(policy)
        assert policy.forward_distance == 33

    def test_adjustment_clamps_at_t3(self):
        # Regression: the guard only checked distance < T3 *before* adding
        # the bump, so a distance of T3-1 plus a bump of 4 overshot the
        # paper's limit by up to 4.  The bump must clamp at T3 exactly.
        policy = self._policy()
        policy.forward_distance = 31  # T3 - 1: the guard passes
        # Interval untouch total 16 + 9 = 25 -> bucket(25) = 4.
        policy.on_chunk_evicted(evicted_entry(100, 16), 0)
        policy.on_chunk_evicted(evicted_entry(101, 9), 0)
        end_interval(policy)
        assert policy.forward_distance == 32  # clamped at T3, not 35
        # The recorded history reports the corrected (clamped) value too.
        assert policy.ctx.stats.forward_distance_history[-1] == 32

    def test_clamped_distance_freezes_afterwards(self):
        policy = self._policy()
        policy.forward_distance = 31
        policy.on_chunk_evicted(evicted_entry(100, 16), 0)
        policy.on_chunk_evicted(evicted_entry(101, 9), 0)
        end_interval(policy, index=0)
        policy.on_chunk_evicted(evicted_entry(102, 16), 0)
        policy.on_chunk_evicted(evicted_entry(103, 9), 0)
        end_interval(policy, index=1)  # distance == T3: guard now blocks
        assert policy.forward_distance == 32

    def test_adjust_disabled_flag(self):
        policy = self._policy(adjust_enabled=False)
        start = policy.forward_distance
        policy.on_chunk_evicted(evicted_entry(100, 12), 0)
        end_interval(policy)
        assert policy.forward_distance == start

    def test_no_adjustment_after_lru_switch(self):
        policy = self._policy()
        policy.strategy = "lru"
        start = policy.forward_distance
        policy.on_chunk_evicted(evicted_entry(100, 12), 0)
        end_interval(policy)
        assert policy.forward_distance == start


class TestWrongEvictions:
    def _policy(self):
        policy = MHPEPolicy()
        chain, stats, clock = attach_policy(policy)
        populate(policy, list(range(8)))
        policy.on_memory_full(0)
        return policy, chain, stats

    def test_fault_on_recently_evicted_counts_once(self):
        policy, _, stats = self._policy()
        policy.on_chunk_evicted(evicted_entry(100, 0), 0)
        policy.on_fault(1600, 100, 0)
        policy.on_fault(1601, 100, 0)  # same chunk: not counted again
        assert stats.wrong_evictions == 1

    def test_fault_on_old_eviction_not_counted(self):
        policy, _, stats = self._policy()
        policy.on_fault(1600, 100, 0)  # never evicted
        assert stats.wrong_evictions == 0

    def test_wrongly_evicted_chunk_reinserted_at_head(self):
        policy, chain, _ = self._policy()
        policy.on_chunk_evicted(evicted_entry(100, 0), 0)
        policy.on_fault(1600, 100, 0)
        policy.insert_chunk(full_entry(100), time=1)
        assert next(iter(chain.from_head())).chunk_id == 100

    def test_normal_chunk_inserted_at_tail(self):
        policy, chain, _ = self._policy()
        policy.insert_chunk(full_entry(100), time=1)
        assert next(iter(chain.from_tail())).chunk_id == 100

    def test_buffer_evicts_oldest(self):
        policy, _, stats = self._policy()
        # Buffer length is 8: evict 9 chunks, the first falls out.
        for cid in range(100, 109):
            policy.on_chunk_evicted(evicted_entry(cid, 0), 0)
        policy.on_fault(100 * 16, 100, 0)
        assert stats.wrong_evictions == 0
        policy.on_fault(108 * 16, 108, 0)
        assert stats.wrong_evictions == 1


class TestSelection:
    def test_mru_skips_forward_distance(self):
        policy = MHPEPolicy()
        clock = IntervalClock(10)
        attach_policy(policy, interval=clock)
        # All chunks old (inserted at interval 10, then clock advances).
        populate(policy, list(range(6)))
        clock.value = 13
        policy.on_memory_full(0)
        policy.forward_distance = 2
        victims = policy.select_victims(16, 0)
        # MRU order: 5,4,3,... skip 2 -> victim 3.
        assert victims[0].chunk_id == 3

    def test_mru_wraps_when_distance_exceeds_candidates(self):
        policy = MHPEPolicy()
        clock = IntervalClock(10)
        attach_policy(policy, interval=clock)
        populate(policy, [1, 2])
        clock.value = 13
        policy.on_memory_full(0)
        policy.forward_distance = 50
        victims = policy.select_victims(16, 0)
        assert victims  # must still evict something

    def test_lru_selects_from_head(self):
        policy = MHPEPolicy()
        clock = IntervalClock(10)
        attach_policy(policy, interval=clock)
        populate(policy, [1, 2, 3])
        clock.value = 13
        policy.on_memory_full(0)
        policy.strategy = "lru"
        assert policy.select_victims(16, 0)[0].chunk_id == 1


class _DequeScanMHPE(MHPEPolicy):
    """Reference implementation: the pre-optimisation O(n) deque membership
    scan on every fault.  Kept only as the oracle for the differential test
    below — behaviour must match the production count-mirror exactly."""

    def on_fault(self, vpn, chunk_id, time):
        if chunk_id in self._evicted_buffer:  # O(n) scan
            try:
                self._evicted_buffer.remove(chunk_id)
            except ValueError:  # pragma: no cover
                pass
            self._wrong_this_interval += 1
            self._wrong_chunks.add(chunk_id)
            self.ctx.stats.wrong_evictions += 1


class TestEvictedBufferMirror:
    """The O(1) count mirror must be observationally identical to the O(n)
    deque scan it replaced."""

    def _drive(self, policy_cls, seed):
        import random

        policy = policy_cls()
        _, stats, _ = attach_policy(policy)
        populate(policy, list(range(40)))
        policy.on_memory_full(0)
        rng = random.Random(seed)
        observations = []
        interval = 0
        for step in range(600):
            roll = rng.random()
            cid = rng.randrange(60)
            if roll < 0.45:
                policy.on_chunk_evicted(evicted_entry(cid, rng.randrange(17)), step)
            elif roll < 0.9:
                policy.on_fault(cid * 16 + rng.randrange(16), cid, step)
            else:
                end_interval(policy, index=interval, time=step)
                interval += 1
            observations.append(
                (stats.wrong_evictions, policy.forward_distance,
                 policy.strategy, sorted(policy._evicted_buffer))
            )
        return observations

    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_differential_wrong_eviction_parity(self, seed):
        assert self._drive(MHPEPolicy, seed) == self._drive(_DequeScanMHPE, seed)

    def test_mirror_tracks_silent_fifo_drop(self):
        # deque(maxlen=8).append silently drops the head; the mirror must
        # forget that chunk too, or stale counts would flag false wrongs.
        policy = MHPEPolicy()
        _, stats, _ = attach_policy(policy)
        populate(policy, list(range(8)))
        policy.on_memory_full(0)
        for cid in range(100, 109):  # 9 evictions into a length-8 buffer
            policy.on_chunk_evicted(evicted_entry(cid, 0), 0)
        policy.on_fault(100 * 16, 100, 0)  # dropped: must not count
        assert stats.wrong_evictions == 0
        assert policy._evicted_counts.get(100) is None

    def test_mirror_rebuilt_on_memory_full_resize(self):
        policy = MHPEPolicy()
        attach_policy(policy)
        populate(policy, list(range(200)))
        for cid in (300, 301, 301):
            policy.on_chunk_evicted(evicted_entry(cid, 0), 0)
        policy.on_memory_full(0)  # buffer resized to maxlen 24
        assert policy._evicted_counts == {300: 1, 301: 2}


class TestRecencyTracking:
    def test_touch_moves_to_tail_once_per_interval(self):
        policy = MHPEPolicy()
        chain, _, clock = attach_policy(policy)
        entries = populate(policy, [1, 2, 3])
        clock.value = 1
        policy.on_page_touched(entries[0], vpn=16, time=0)
        assert [e.chunk_id for e in chain.from_head()] == [2, 3, 1]
        # Second touch in the same interval: no further movement.
        policy.on_page_touched(entries[1], vpn=32, time=0)
        policy.on_page_touched(entries[0], vpn=17, time=1)
        assert [e.chunk_id for e in chain.from_head()] == [3, 1, 2]

    def test_untouch_accumulates_in_stats(self):
        policy = MHPEPolicy()
        _, stats, _ = attach_policy(policy)
        populate(policy, list(range(8)))
        policy.on_memory_full(0)
        policy.on_chunk_evicted(evicted_entry(100, 5), 0)
        policy.on_chunk_evicted(evicted_entry(101, 3), 0)
        assert stats.untouch_total == 8

    def test_interval_record_telemetry(self):
        policy = MHPEPolicy()
        attach_policy(policy)
        populate(policy, list(range(8)))
        policy.on_memory_full(0)
        initial_fd = policy.forward_distance
        policy.on_chunk_evicted(evicted_entry(100, 7), 0)
        record = end_interval(policy)
        assert record.untouch_total == 7
        assert record.strategy == "mru"
        # The record reports the distance in force *during* the interval;
        # the adjustment lands afterwards.
        assert record.forward_distance == initial_fd
        assert policy.forward_distance == initial_fd + 1  # bucket(7) = 1
