"""Trace persistence and characterisation (repro.workloads.trace_io)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.suite import make_workload
from repro.workloads.trace_io import (
    downsample,
    load_trace,
    profile_trace,
    save_trace,
)

from conftest import make_simple_workload


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        wl = make_workload("NW", scale=0.25)
        path = tmp_path / "nw.npz"
        save_trace(wl, path)
        loaded = load_trace(path)
        assert loaded.name == wl.name
        assert loaded.pattern_type == wl.pattern_type
        assert loaded.footprint_pages == wl.footprint_pages
        assert np.array_equal(loaded.accesses, wl.accesses)
        assert np.array_equal(loaded.writes, wl.writes)

    def test_roundtrip_without_writes(self, tmp_path):
        wl = make_simple_workload()
        path = save_trace(wl, tmp_path / "t.npz")
        loaded = load_trace(path)
        assert loaded.writes is None

    def test_loaded_trace_simulates_identically(self, tmp_path):
        from repro.config import SimConfig, SMConfig
        from repro.engine.simulator import Simulator

        cfg = SimConfig(sm=SMConfig(num_sms=4))
        wl = make_workload("STN", scale=0.5)
        save_trace(wl, tmp_path / "stn.npz")
        a = Simulator(make_workload("STN", scale=0.5),
                      oversubscription=0.5, config=cfg).run()
        b = Simulator(load_trace(tmp_path / "stn.npz"),
                      oversubscription=0.5, config=cfg).run()
        assert a.total_cycles == b.total_cycles


class TestReturnPathParity:
    """Regression: ``save_trace`` returns the path numpy actually wrote.

    ``np.savez_compressed`` appends ``.npz`` unless the *name* already ends
    with it.  The old return path re-derived that with ``with_suffix``,
    which *replaces* the final suffix of multi-dot names and raises
    ``ValueError`` on trailing-dot names — so the returned path could point
    at a file that does not exist.
    """

    def test_suffixless_name(self, tmp_path):
        returned = save_trace(make_simple_workload(), tmp_path / "trace")
        assert returned.name == "trace.npz"
        assert returned.exists()
        load_trace(returned)

    def test_multi_dot_name(self, tmp_path):
        # with_suffix would have returned "model.npz" (replacing ".v2"),
        # while numpy writes "model.v2.npz".
        returned = save_trace(make_simple_workload(), tmp_path / "model.v2")
        assert returned.name == "model.v2.npz"
        assert returned.exists()
        load_trace(returned)

    def test_trailing_dot_name(self, tmp_path):
        # with_suffix raises ValueError on "trace."; numpy happily writes
        # "trace..npz".
        returned = save_trace(make_simple_workload(), tmp_path / "trace.")
        assert returned.name == "trace..npz"
        assert returned.exists()
        load_trace(returned)

    def test_hidden_file_name(self, tmp_path):
        returned = save_trace(make_simple_workload(), tmp_path / ".trace")
        assert returned.name == ".trace.npz"
        assert returned.exists()

    def test_explicit_npz_unchanged(self, tmp_path):
        returned = save_trace(make_simple_workload(), tmp_path / "t.npz")
        assert returned == tmp_path / "t.npz"

    def test_load_accepts_original_suffixless_argument(self, tmp_path):
        wl = make_simple_workload()
        save_trace(wl, tmp_path / "trace")
        loaded = load_trace(tmp_path / "trace")  # fallback appends .npz
        assert np.array_equal(loaded.accesses, wl.accesses)

    def test_every_returned_path_round_trips(self, tmp_path):
        wl = make_simple_workload()
        for name in ("plain", "a.b.c", "dotty.", ".hidden", "x.npz"):
            returned = save_trace(wl, tmp_path / name)
            assert returned.exists(), name
            assert np.array_equal(load_trace(returned).accesses, wl.accesses)


class TestDownsample:
    def test_keeps_every_nth(self):
        wl = make_simple_workload()
        ds = downsample(wl, 4)
        assert ds.num_accesses == -(-wl.num_accesses // 4)
        assert np.array_equal(ds.accesses, wl.accesses[::4])
        assert ds.name.endswith("/ds4")

    def test_factor_one_is_identity(self):
        wl = make_simple_workload()
        assert downsample(wl, 1) is wl

    def test_invalid_factor(self):
        with pytest.raises(WorkloadError):
            downsample(make_simple_workload(), 0)


class TestProfile:
    def test_streaming_profile(self):
        wl = make_workload("2DC", scale=0.25)  # sequential, 2 touches/page
        p = profile_trace(wl)
        assert p.dominant_stride in (0, 1)
        assert p.touches_per_page_mean == pytest.approx(2.0)
        assert p.chunk_coverage_mean == pytest.approx(1.0)
        assert p.reuse_fraction == pytest.approx(0.5)

    def test_strided_profile_shows_low_chunk_coverage(self):
        wl = make_workload("MVT", scale=0.25)  # stride 4 per phase
        p = profile_trace(wl)
        # First phase touches every 4th page: unique/footprint ~ 1/2 over
        # two phases, and per-phase chunk coverage is low.
        assert p.dominant_stride == 4
        assert p.dominant_stride_fraction > 0.5

    def test_thrashing_profile_high_reuse(self):
        wl = make_workload("STN", scale=0.5)  # 16 sweeps
        p = profile_trace(wl)
        assert p.reuse_fraction > 0.9
        assert p.unique_pages == wl.footprint_pages

    def test_region_moving_working_set_drift(self):
        wl = make_workload("HYB", scale=0.25)
        p = profile_trace(wl)
        # Each quarter sees only part of the footprint.
        assert max(p.quarter_working_sets) < p.unique_pages

    def test_summary_keys(self):
        p = profile_trace(make_simple_workload())
        s = p.summary()
        for key in ("accesses", "footprint", "reuse", "stride", "chunk_coverage"):
            assert key in s


class TestDegenerateTraces:
    """Regression: profiling must not crash on empty or near-empty traces
    (e.g. an externally produced ``.npz`` or an aggressive downsample)."""

    def test_empty_trace_profiles_to_zeros(self):
        wl = make_simple_workload(footprint=256)
        wl.accesses = np.zeros(0, dtype=np.int64)  # post-init: bypass guard
        p = profile_trace(wl)
        assert p.num_accesses == 0
        assert p.unique_pages == 0
        assert p.footprint_pages == 256
        assert p.touches_per_page_mean == 0.0
        assert p.reuse_fraction == 0.0
        assert p.dominant_stride == 0
        assert p.dominant_stride_fraction == 0.0
        assert p.chunk_coverage_mean == 0.0
        assert p.quarter_working_sets == ()
        p.summary()  # renders without dividing by zero

    def test_single_access_profile(self):
        wl = make_simple_workload(footprint=64, accesses=[7])
        p = profile_trace(wl)
        assert p.num_accesses == 1
        assert p.unique_pages == 1
        assert p.reuse_fraction == 0.0
        assert p.dominant_stride == 0

    def test_downsample_to_minimum_then_profile(self):
        # Downsampling a trace to a single access must stay profileable.
        wl = make_simple_workload(footprint=256)
        thin = downsample(wl, wl.accesses.size)
        assert thin.accesses.size == 1
        p = profile_trace(thin)
        assert p.num_accesses == 1
        assert p.dominant_stride_fraction == 0.0
