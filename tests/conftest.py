"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.harness import cache as cache_mod
from repro.harness.experiment import clear_cache
from repro.config import (
    MHPEConfig,
    PatternBufferConfig,
    SimConfig,
    SMConfig,
    TranslationConfig,
    UVMConfig,
)
from repro.workloads.base import Workload


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path):
    """Point the active disk cache at a per-test temporary directory and
    start every test with an empty in-process memo, so tests can never
    poison each other's results (directly or via ~/.cache)."""
    previous = cache_mod.set_active_cache(
        cache_mod.ResultCache(tmp_path / "result-cache")
    )
    clear_cache(disk=False)
    yield
    cache_mod.set_active_cache(previous)
    clear_cache(disk=False)


@pytest.fixture
def fast_config() -> SimConfig:
    """A small-GPU config that keeps unit/integration tests quick while
    preserving the paper's UVM geometry (16-page chunks, 64-page intervals)."""
    return SimConfig(sm=SMConfig(num_sms=4))


@pytest.fixture
def no_translation_config() -> SimConfig:
    """Config with the TLB/walker path disabled (pure UVM dynamics)."""
    return SimConfig(
        sm=SMConfig(num_sms=4),
        translation=TranslationConfig(enabled=False),
    )


def make_simple_workload(
    footprint: int = 256,
    accesses=None,
    name: str = "unit",
    distribution: str = "interleave",
    pattern_type: str = "IV",
) -> Workload:
    """A minimal deterministic workload for unit tests."""
    if accesses is None:
        accesses = np.tile(np.arange(footprint, dtype=np.int64), 3)
    return Workload(
        name=name,
        pattern_type=pattern_type,
        footprint_pages=footprint,
        accesses=np.asarray(accesses, dtype=np.int64),
        distribution=distribution,
    )


@pytest.fixture
def cyclic_workload() -> Workload:
    """A small cyclic (thrashing) workload: 16 chunks swept 3 times."""
    return make_simple_workload(footprint=256)


@pytest.fixture
def streaming_workload() -> Workload:
    """A single-pass streaming workload."""
    return make_simple_workload(
        footprint=256,
        accesses=np.arange(256, dtype=np.int64),
        pattern_type="I",
    )
