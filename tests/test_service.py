"""The always-on experiment service (repro.service) end to end.

Covers the tentpole acceptance criteria of the service PR:

* live submit -> poll -> stream against an in-process service and a real
  localhost HTTP server;
* warm resubmission of an already-cached batch reports
  ``BatchStats.simulated == 0`` through the API;
* a ``REPRO_FAULT_PLAN`` drill surfaces per-spec failure (and the job's
  ``failed`` state) through the API instead of crashing the service;
* kill + restart resumes the persisted queue without losing jobs or
  re-running completed specs;
* the job state machine, priority queue, token bucket, tenant admission
  and the NDJSON event schema, each in isolation.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request

import pytest

from repro.errors import (
    AdmissionDenied,
    InvalidJobRequest,
    RateLimited,
    ServiceError,
    UnknownJob,
)
from repro.harness.experiment import RunSpec, execution_count, spec_label
from repro.obs.bus import BusEvent, EventBus
from repro.service import (
    ExperimentService,
    Job,
    JobQueue,
    JobStore,
    ServiceClient,
    ServiceConfig,
    TenantAdmission,
    TokenBucket,
    make_server,
)
from repro.service.wire import (
    config_from_overrides,
    load_event_schema,
    spec_from_dict,
    spec_to_dict,
    validate_event,
    validate_event_lines,
)

SPEC = {"app": "STN", "setup": "baseline", "oversubscription": 0.5, "scale": 0.25}
SPEC2 = {"app": "NW", "setup": "baseline", "oversubscription": 0.5, "scale": 0.25}


def wait_terminal(service, job_id, timeout_s=60.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        view = service.status(job_id)
        if view["state"] in ("done", "failed", "cancelled"):
            return view
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} not terminal after {timeout_s}s")


@pytest.fixture
def service(tmp_path):
    svc = ExperimentService(ServiceConfig(state_dir=tmp_path / "state"))
    svc.start()
    yield svc
    svc.stop()


@pytest.fixture
def idle_service(tmp_path):
    """A service whose scheduler is *not* running (jobs stay queued)."""
    svc = ExperimentService(ServiceConfig(state_dir=tmp_path / "state"))
    yield svc
    svc.stop()


# --------------------------------------------------------------------------
# EventBus
# --------------------------------------------------------------------------


class TestEventBus:
    def test_sequence_is_monotonic_from_one(self):
        bus = EventBus()
        seqs = [bus.publish("k", {"i": i}).seq for i in range(5)]
        assert seqs == [1, 2, 3, 4, 5]
        assert bus.last_seq == 5

    def test_events_since_is_exclusive(self):
        bus = EventBus()
        for i in range(4):
            bus.publish("k", {"i": i})
        assert [e.seq for e in bus.events_since(2)] == [3, 4]
        assert bus.events_since(4) == []

    def test_to_dict_reserved_keys_win(self):
        event = BusEvent(seq=7, kind="real", payload={"seq": 0, "kind": "fake", "x": 1})
        d = event.to_dict()
        assert d["seq"] == 7 and d["kind"] == "real" and d["x"] == 1

    def test_wait_since_blocks_until_publish(self):
        bus = EventBus()
        got = []

        def reader():
            events, _ = bus.wait_since(0, timeout=5.0)
            got.extend(events)

        t = threading.Thread(target=reader)
        t.start()
        time.sleep(0.05)
        bus.publish("k", {})
        t.join(5.0)
        assert [e.seq for e in got] == [1]

    def test_close_wakes_readers_and_rejects_publishes(self):
        bus = EventBus()
        results = {}

        def reader():
            results["ret"] = bus.wait_since(0)

        t = threading.Thread(target=reader)
        t.start()
        time.sleep(0.05)
        bus.close()
        t.join(5.0)
        assert results["ret"] == ([], True)
        with pytest.raises(RuntimeError):
            bus.publish("k", {})

    def test_history_limit_drops_from_front(self):
        bus = EventBus(history_limit=2)
        for i in range(5):
            bus.publish("k", {"i": i})
        assert [e.seq for e in bus.events_since(0)] == [4, 5]
        assert bus.dropped == 3
        assert bus.last_seq == 5  # numbering keeps counting past drops

    def test_history_limit_validated(self):
        with pytest.raises(ValueError):
            EventBus(history_limit=0)


# --------------------------------------------------------------------------
# Wire format
# --------------------------------------------------------------------------


class TestWire:
    def test_spec_round_trip(self):
        spec = spec_from_dict(SPEC)
        assert spec == RunSpec("STN", "baseline", 0.5, scale=0.25)
        assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_rate_one_or_more_means_unlimited(self):
        assert spec_from_dict({**SPEC, "oversubscription": 1.0}).oversubscription is None
        assert spec_from_dict({**SPEC, "oversubscription": None}).oversubscription is None

    @pytest.mark.parametrize(
        "bad",
        [
            {**SPEC, "app": "NO-SUCH-APP"},
            {**SPEC, "app": 7},
            {**SPEC, "setup": "no-such-setup"},
            {**SPEC, "oversubscription": -0.5},
            {**SPEC, "oversubscription": "half"},
            {**SPEC, "scale": 0},
            {**SPEC, "seed": 1.5},
            {**SPEC, "instances": 0},
            {**SPEC, "crash_budget_factor": -1},
            {**SPEC, "bogus_field": 1},
            "not an object",
        ],
    )
    def test_invalid_specs_rejected(self, bad):
        with pytest.raises(InvalidJobRequest):
            spec_from_dict(bad)

    def test_config_overrides_nested(self):
        cfg = config_from_overrides({"sm": {"num_sms": 4}})
        assert cfg is not None and cfg.sm.num_sms == 4
        assert config_from_overrides(None) is None
        assert config_from_overrides({}) is None

    def test_config_overrides_unknown_field_rejected(self):
        with pytest.raises(InvalidJobRequest):
            config_from_overrides({"sm": {"not_a_field": 1}})
        with pytest.raises(InvalidJobRequest):
            config_from_overrides({"warp_drive": True})

    def test_config_overrides_invalid_value_rejected(self):
        with pytest.raises(InvalidJobRequest):
            config_from_overrides({"sm": {"num_sms": -3}})

    def test_validate_event_catches_shape_errors(self):
        schema = load_event_schema()
        good = {"seq": 1, "job": "b-1", "kind": "progress", "ts": 1.0,
                "done": 1, "total": 2}
        assert validate_event(good, schema) == []
        assert validate_event({"seq": 1}, schema)  # missing required
        assert validate_event({**good, "seq": "one"}, schema)  # wrong type
        assert validate_event({**good, "kind": "mystery"}, schema)
        assert validate_event({**good, "surprise": 1}, schema)  # additional
        missing_kind_field = {k: v for k, v in good.items() if k != "done"}
        assert validate_event(missing_kind_field, schema)

    def test_validate_event_lines_reports_bad_json(self):
        errors = validate_event_lines(["{not json", ""])
        assert len(errors) == 1 and "line 1" in errors[0]


# --------------------------------------------------------------------------
# Job state machine / queue / store
# --------------------------------------------------------------------------


def make_job(job_id="b-test", **kwargs):
    kwargs.setdefault("specs", [spec_from_dict(SPEC)])
    return Job(job_id=job_id, **kwargs)


class TestJobStateMachine:
    def test_happy_path(self):
        job = make_job()
        assert job.state == "queued" and not job.terminal
        job.transition("running")
        assert job.attempts == 1
        job.transition("done")
        assert job.terminal

    def test_illegal_transitions_raise(self):
        job = make_job()
        with pytest.raises(ServiceError):
            job.transition("done")  # queued -> done skips running
        job.transition("running")
        job.transition("failed")
        with pytest.raises(ServiceError):
            job.transition("running")  # terminal states are final

    def test_restart_recovery_transition(self):
        job = make_job()
        job.transition("running")
        job.transition("queued")  # the one legal way back
        job.transition("running")
        assert job.attempts == 2

    def test_unknown_state_rejected(self):
        with pytest.raises(ServiceError):
            make_job(state="paused")
        with pytest.raises(ServiceError):
            make_job().transition("paused")

    def test_snapshot_round_trip(self):
        job = make_job(tenant="t1", priority=3, overrides={"sm": {"num_sms": 4}})
        job.transition("running")
        job.outcomes = [{"label": "x", "status": "ok", "retries": 0, "error": None}]
        clone = Job.from_dict(job.to_dict())
        assert clone.to_dict() == job.to_dict()
        assert clone.specs == job.specs

    def test_snapshot_version_checked(self):
        raw = make_job().to_dict()
        raw["version"] = 999
        with pytest.raises(ServiceError):
            Job.from_dict(raw)


class TestJobQueue:
    def test_priority_then_fifo(self):
        q = JobQueue()
        for job_id, prio in [("a", 0), ("b", 5), ("c", 0), ("d", 5)]:
            q.push(make_job(job_id, priority=prio))
        assert [q.pop(0.1) for _ in range(4)] == ["b", "d", "a", "c"]

    def test_pop_times_out_empty(self):
        assert JobQueue().pop(timeout=0.05) is None

    def test_remove_cancels_queued(self):
        q = JobQueue()
        q.push(make_job("a"))
        q.push(make_job("b"))
        assert q.remove("a") is True
        assert q.remove("zzz") is False
        assert q.pop(0.1) == "b"
        assert len(q) == 0

    def test_closed_queue(self):
        q = JobQueue()
        q.push(make_job("a"))
        q.close()
        assert q.pop(0.1) == "a"  # drains what it has
        assert q.pop(0.1) is None
        with pytest.raises(ServiceError):
            q.push(make_job("b"))


class TestJobStore:
    def test_save_then_load_all(self, tmp_path):
        store = JobStore(tmp_path)
        store.save(make_job("a"))
        done = make_job("b")
        done.transition("running")
        done.transition("done")
        store.save(done)

        fresh = JobStore(tmp_path)
        pending = fresh.load_all()
        assert [j.job_id for j in pending] == ["a"]
        assert fresh.get("b").state == "done"

    def test_running_jobs_requeued_on_load(self, tmp_path):
        store = JobStore(tmp_path)
        job = make_job("crashed-mid-run")
        job.transition("running")
        store.save(job)

        fresh = JobStore(tmp_path)
        pending = fresh.load_all()
        assert [j.job_id for j in pending] == ["crashed-mid-run"]
        assert pending[0].state == "queued"
        # and the recovery is itself persisted
        again = JobStore(tmp_path)
        again.load_all()
        assert again.get("crashed-mid-run").state == "queued"

    def test_unknown_job_raises(self, tmp_path):
        with pytest.raises(UnknownJob):
            JobStore(tmp_path).get("nope")

    def test_snapshots_are_files_per_job(self, tmp_path):
        store = JobStore(tmp_path)
        store.save(make_job("a"))
        store.save(make_job("b"))
        names = sorted(p.name for p in store.directory.glob("*.json"))
        assert names == ["a.json", "b.json"]
        assert not list(store.directory.glob("*.tmp"))


# --------------------------------------------------------------------------
# Admission control
# --------------------------------------------------------------------------


class TestTokenBucket:
    def test_burst_then_limited_with_retry_after(self):
        clock = [0.0]
        bucket = TokenBucket(2, 1.0, clock=lambda: clock[0])
        bucket.acquire()
        bucket.acquire()
        with pytest.raises(RateLimited) as err:
            bucket.acquire()
        assert err.value.retry_after_s == pytest.approx(1.0)
        assert err.value.http_status == 429

    def test_refill_restores_tokens(self):
        clock = [0.0]
        bucket = TokenBucket(1, 2.0, clock=lambda: clock[0])
        bucket.acquire()
        with pytest.raises(RateLimited):
            bucket.acquire()
        clock[0] = 0.6  # 1.2 tokens accrued, capped at capacity 1
        bucket.acquire()
        assert bucket.available() == pytest.approx(0.0)

    def test_disabled_bucket_never_limits(self):
        bucket = TokenBucket(1, 0.0)
        for _ in range(50):
            bucket.acquire()

    def test_capacity_validated(self):
        with pytest.raises(ServiceError):
            TokenBucket(0, 1.0)


class TestTenantAdmission:
    def test_cap_enforced_per_tenant(self):
        adm = TenantAdmission(2)
        adm.admit("t1")
        adm.admit("t1")
        with pytest.raises(AdmissionDenied) as err:
            adm.admit("t1")
        assert err.value.tenant == "t1" and err.value.cap == 2
        adm.admit("t2")  # other tenants unaffected

    def test_release_frees_slot(self):
        adm = TenantAdmission(1)
        adm.admit("t")
        adm.release("t")
        adm.admit("t")
        assert adm.active("t") == 1

    def test_disabled_cap(self):
        adm = TenantAdmission(0)
        for _ in range(20):
            adm.admit("t")


# --------------------------------------------------------------------------
# Service end-to-end (in-process)
# --------------------------------------------------------------------------


class TestServiceLive:
    def test_submit_poll_stream(self, service):
        view = service.submit({"specs": [SPEC, SPEC2]})
        job_id = view["job"]
        assert view["state"] in ("queued", "running")
        final = wait_terminal(service, job_id)
        assert final["state"] == "done"
        assert final["stats"]["simulated"] >= 1
        assert final["stats"]["failed"] == 0
        statuses = [entry["status"] for entry in final["specs"]]
        assert statuses == ["ok", "ok"]
        for entry in final["specs"]:
            assert entry["result"]["total_cycles"] > 0
            assert entry["result"]["workload"] == entry["spec"]["app"]

        events = [e.to_dict() for e in service.events_bus(job_id).events_since(0)]
        kinds = [e["kind"] for e in events]
        assert kinds[0] == "queued" and kinds[-1] == "done"
        assert "batch_stats" in kinds and "spec_outcome" in kinds
        schema = load_event_schema()
        assert [err for e in events for err in validate_event(e, schema)] == []

    def test_warm_resubmission_simulates_nothing(self, service):
        first = wait_terminal(service, service.submit({"specs": [SPEC]})["job"])
        assert first["stats"]["simulated"] == 1
        executed_before = execution_count()
        second = wait_terminal(service, service.submit({"specs": [SPEC]})["job"])
        assert second["state"] == "done"
        assert second["stats"]["simulated"] == 0
        assert second["stats"]["memo_hits"] + second["stats"]["cache_hits"] == 1
        assert execution_count() == executed_before
        # identical payloads either way
        assert (second["specs"][0]["result"]["total_cycles"]
                == first["specs"][0]["result"]["total_cycles"])

    def test_fault_drill_surfaces_failed_through_api(self, service, monkeypatch):
        label = spec_label(spec_from_dict(SPEC))
        monkeypatch.setenv(
            "REPRO_FAULT_PLAN",
            json.dumps([{"match": label, "action": "raise",
                         "message": "drill"}]),
        )
        view = service.submit({"specs": [SPEC, SPEC2]})
        final = wait_terminal(service, view["job"])
        assert final["state"] == "failed"
        assert "1 of 2" in final["error"]
        by_label = {e["label"]: e for e in final["specs"]}
        assert by_label[label]["status"] == "failed"
        assert "drill" in by_label[label]["error"]
        assert by_label[label]["result"] is None
        other = spec_label(spec_from_dict(SPEC2))
        assert by_label[other]["status"] == "ok"
        assert by_label[other]["result"] is not None
        kinds = [e.kind for e in service.events_bus(view["job"]).events_since(0)]
        assert kinds[-1] == "failed"

    def test_duplicate_specs_collapse_to_one_simulation(self, service):
        final = wait_terminal(service, service.submit({"specs": [SPEC, SPEC]})["job"])
        assert final["state"] == "done"
        assert final["stats"]["simulated"] == 1
        results = [e["result"]["total_cycles"] for e in final["specs"]]
        assert results[0] == results[1]

    def test_config_overrides_affect_results_and_cache_key(self, service):
        plain = wait_terminal(service, service.submit({"specs": [SPEC]})["job"])
        small = wait_terminal(
            service,
            service.submit(
                {"specs": [SPEC], "config": {"sm": {"num_sms": 2}}}
            )["job"],
        )
        assert small["stats"]["simulated"] == 1  # different cache key
        assert (small["specs"][0]["result"]["total_cycles"]
                != plain["specs"][0]["result"]["total_cycles"])

    def test_cancel_queued_job(self, idle_service):
        view = idle_service.submit({"specs": [SPEC]})
        cancelled = idle_service.cancel(view["job"])
        assert cancelled["state"] == "cancelled"
        assert cancelled["specs"][0]["status"] == "cancelled"
        kinds = [e.kind for e in idle_service.events_bus(view["job"]).events_since(0)]
        assert kinds == ["queued", "cancelled"]
        # slot released: with the job gone, a capped tenant could submit again
        assert idle_service.admission.active("default") == 0

    def test_submission_validation(self, idle_service):
        with pytest.raises(InvalidJobRequest):
            idle_service.submit({"specs": []})
        with pytest.raises(InvalidJobRequest):
            idle_service.submit({"specs": [SPEC], "bogus": 1})
        with pytest.raises(InvalidJobRequest):
            idle_service.submit({"specs": [{**SPEC, "app": "NOPE"}]})
        with pytest.raises(InvalidJobRequest):
            idle_service.submit({"specs": [SPEC], "config": {"bogus": 1}})
        with pytest.raises(InvalidJobRequest):
            idle_service.submit({"specs": [SPEC], "priority": "high"})
        with pytest.raises(UnknownJob):
            idle_service.status("b-nope")
        with pytest.raises(UnknownJob):
            idle_service.events_bus("b-nope")
        # nothing was admitted by any rejected submission
        assert idle_service.admission.active("default") == 0

    def test_tenant_cap_through_service(self, tmp_path):
        svc = ExperimentService(
            ServiceConfig(state_dir=tmp_path / "state", tenant_cap=1)
        )
        svc.submit({"specs": [SPEC], "tenant": "t1"})
        with pytest.raises(AdmissionDenied):
            svc.submit({"specs": [SPEC], "tenant": "t1"})
        svc.submit({"specs": [SPEC], "tenant": "t2"})
        svc.stop()

    def test_rate_limit_through_service(self, tmp_path):
        svc = ExperimentService(
            ServiceConfig(
                state_dir=tmp_path / "state",
                rate_capacity=1,
                rate_refill_per_s=0.001,
            )
        )
        svc.submit({"specs": [SPEC]})
        with pytest.raises(RateLimited):
            svc.submit({"specs": [SPEC]})
        svc.stop()

    def test_priority_order_drained_high_first(self, tmp_path):
        svc = ExperimentService(ServiceConfig(state_dir=tmp_path / "state"))
        low = svc.submit({"specs": [SPEC], "priority": 0})["job"]
        high = svc.submit({"specs": [SPEC2], "priority": 9})["job"]
        svc.start()
        wait_terminal(svc, low)
        wait_terminal(svc, high)
        assert (svc.store.get(high).started_ts
                <= svc.store.get(low).started_ts)
        svc.stop()


class TestRestartResume:
    def test_restart_resumes_queued_jobs(self, tmp_path):
        state = tmp_path / "state"
        svc1 = ExperimentService(ServiceConfig(state_dir=state))
        job_id = svc1.submit({"specs": [SPEC]})["job"]
        svc1.stop()  # killed before the scheduler ever ran

        svc2 = ExperimentService(ServiceConfig(state_dir=state))
        pending = svc2.resume()
        assert [j.job_id for j in pending] == [job_id]
        svc2.start()
        final = wait_terminal(svc2, job_id)
        assert final["state"] == "done"
        svc2.stop()

    def test_restart_does_not_rerun_completed_specs(self, tmp_path):
        state = tmp_path / "state"
        svc1 = ExperimentService(ServiceConfig(state_dir=state))
        svc1.start()
        done_id = svc1.submit({"specs": [SPEC]})["job"]
        wait_terminal(svc1, done_id)
        svc1.stop()

        executed = execution_count()
        svc2 = ExperimentService(ServiceConfig(state_dir=state))
        assert svc2.resume() == []  # terminal jobs are not re-queued
        svc2.start()
        view = svc2.status(done_id)
        assert view["state"] == "done"
        assert view["specs"][0]["result"]["total_cycles"] > 0
        assert execution_count() == executed  # nothing re-ran
        svc2.stop()

    def test_mid_run_crash_requeues_and_finishes(self, tmp_path):
        state = tmp_path / "state"
        # Fake a service that died mid-drain: snapshot says "running".
        store = JobStore(state)
        job = make_job("b-interrupted")
        job.transition("running")
        store.save(job)

        svc = ExperimentService(ServiceConfig(state_dir=state))
        pending = svc.resume()
        assert [j.job_id for j in pending] == ["b-interrupted"]
        svc.start()
        final = wait_terminal(svc, "b-interrupted")
        assert final["state"] == "done"
        assert final["attempts"] == 2  # first life + the resumed one
        svc.stop()

    def test_terminal_job_events_replayed_after_restart(self, tmp_path):
        state = tmp_path / "state"
        svc1 = ExperimentService(ServiceConfig(state_dir=state))
        svc1.start()
        job_id = svc1.submit({"specs": [SPEC]})["job"]
        wait_terminal(svc1, job_id)
        svc1.stop()

        svc2 = ExperimentService(ServiceConfig(state_dir=state))
        svc2.resume()
        bus = svc2.events_bus(job_id)
        events = [e.to_dict() for e in bus.events_since(0)]
        assert bus.closed
        kinds = [e["kind"] for e in events]
        assert kinds[0] == "queued" and kinds[-1] == "done"
        assert all(e.get("resumed") is True for e in events)
        schema = load_event_schema()
        assert [err for e in events for err in validate_event(e, schema)] == []
        svc2.stop()


# --------------------------------------------------------------------------
# HTTP layer (real localhost server)
# --------------------------------------------------------------------------


@pytest.fixture
def http_service(tmp_path):
    svc = ExperimentService(ServiceConfig(state_dir=tmp_path / "state"))
    svc.start()
    server = make_server(svc)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}")
    yield svc, client
    server.shutdown()
    server.server_close()
    svc.stop()


class TestHTTP:
    def test_healthz(self, http_service):
        _, client = http_service
        health = client.health()
        assert health["ok"] is True and health["scheduler"] is True

    def test_submit_poll_stream_over_http(self, http_service):
        _, client = http_service
        view = client.submit({"specs": [SPEC]})
        assert view["state"] in ("queued", "running")
        final = client.wait(view["job"], timeout_s=60)
        assert final["state"] == "done"
        assert final["stats"]["simulated"] in (0, 1)

        # raw NDJSON body validates line by line against the schema
        raw = urllib.request.urlopen(
            f"{client.base_url}/batches/{view['job']}/events", timeout=30
        ).read().decode("utf-8")
        lines = raw.splitlines()
        assert validate_event_lines(lines) == []
        kinds = [json.loads(line)["kind"] for line in lines if line.strip()]
        assert kinds[0] == "queued" and kinds[-1] == "done"

    def test_follow_streams_until_close(self, http_service):
        _, client = http_service
        view = client.submit({"specs": [SPEC]})
        kinds = [e["kind"] for e in client.events(view["job"], follow=True)]
        assert kinds[-1] in ("done", "failed")

    def test_after_resumes_mid_stream(self, http_service):
        _, client = http_service
        view = client.submit({"specs": [SPEC]})
        client.wait(view["job"], timeout_s=60)
        all_events = list(client.events(view["job"]))
        tail = list(client.events(view["job"], after=all_events[1]["seq"]))
        assert [e["seq"] for e in tail] == [e["seq"] for e in all_events[2:]]

    def test_unknown_batch_is_404(self, http_service):
        _, client = http_service
        with pytest.raises(ServiceError) as err:
            client.status("b-nope")
        assert "404" in str(err.value)
        with pytest.raises(ServiceError) as err:
            list(client.events("b-nope"))
        assert "404" in str(err.value)

    def test_bad_payload_is_400(self, http_service):
        _, client = http_service
        with pytest.raises(ServiceError) as err:
            client.submit({"specs": [{**SPEC, "app": "NOPE"}]})
        assert "400" in str(err.value)

    def test_list_batches(self, http_service):
        _, client = http_service
        view = client.submit({"specs": [SPEC]})
        client.wait(view["job"], timeout_s=60)
        batches = client.list_batches()["batches"]
        assert any(b["job"] == view["job"] and b["state"] == "done"
                   for b in batches)

    def test_cancel_running_conflicts(self, http_service):
        svc, client = http_service
        view = client.submit({"specs": [SPEC]})
        client.wait(view["job"], timeout_s=60)
        # terminal cancel is a no-op echo of the terminal state
        assert client.cancel(view["job"])["state"] == "done"

    def test_unknown_route_404(self, http_service):
        _, client = http_service
        with pytest.raises(ServiceError):
            client._request("GET", "/no/such/route")


# --------------------------------------------------------------------------
# CLI clients against a live server
# --------------------------------------------------------------------------


class TestCLIClients:
    def test_submit_and_status_commands(self, http_service, capsys):
        from repro.cli import main

        _, client = http_service
        rc = main([
            "submit", "STN", "--setup", "baseline", "--rate", "0.5",
            "--scale", "0.25", "--url", client.base_url, "--json",
        ])
        out = capsys.readouterr()
        assert rc == 0
        view = json.loads(out.out)
        assert view["state"] == "done"
        job_id = view["job"]

        assert main(["status", "--url", client.base_url]) == 0
        out = capsys.readouterr()
        assert job_id in out.out

        assert main(["status", job_id, "--url", client.base_url,
                     "--events"]) == 0
        out = capsys.readouterr()
        lines = [line for line in out.out.splitlines() if line.strip()]
        assert validate_event_lines(lines) == []

    def test_submit_spec_file(self, http_service, tmp_path, capsys):
        from repro.cli import main

        _, client = http_service
        payload = {"specs": [SPEC], "tenant": "filed"}
        path = tmp_path / "payload.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        rc = main(["submit", "--spec-file", str(path),
                   "--url", client.base_url, "--json"])
        out = capsys.readouterr()
        assert rc == 0
        assert json.loads(out.out)["tenant"] == "filed"

    def test_submit_without_specs_is_usage_error(self, capsys):
        from repro.cli import main

        assert main(["submit", "--url", "http://127.0.0.1:1"]) == 2
