"""Component-registry contract tests.

Covers the registry semantics the rest of the harness leans on: collision
detection, frozen-after-boot mutation, unknown-name errors that list the
valid choices, deterministic plugin discovery, compositional pair setups,
and — most load-bearing — the golden cache-key test: every setup that
existed before the registry refactor must keep a byte-identical
``spec_fingerprint``, or every warm cache in existence silently dies.
"""

import sys
import types

import pytest

from repro import registry
from repro.config import SimConfig
from repro.errors import ConfigError
from repro.harness.baselines import SETUPS  # noqa: F401  (registers components)
from repro.harness.cache import spec_fingerprint
from repro.harness.experiment import RunSpec
from repro.registry import (
    KINDS,
    Registration,
    Registry,
    RegistryError,
    canonical_setup_name,
    pair_setup_name,
    plugin_components_payload,
    split_pair_name,
)


def _policy():
    return object()


class TestRegistryContract:
    def test_duplicate_name_collides(self):
        reg = Registry()
        reg.add("policy", "lru", _policy, origin="pkg_a.policies")
        with pytest.raises(RegistryError, match="duplicate policy 'lru'"):
            reg.add("policy", "lru", _policy, origin="pkg_b.policies")

    def test_collision_names_the_prior_origin(self):
        reg = Registry()
        reg.add("policy", "lru", _policy, origin="pkg_a.policies")
        with pytest.raises(RegistryError, match="pkg_a.policies"):
            reg.add("policy", "lru", _policy)

    def test_unknown_kind_rejected(self):
        reg = Registry()
        with pytest.raises(RegistryError, match="unknown registry kind"):
            reg.add("flusher", "x", _policy)
        with pytest.raises(RegistryError, match="unknown registry kind"):
            reg.names("flusher")

    def test_unknown_name_error_lists_choices(self):
        reg = Registry()
        reg.add("prefetcher", "alpha", _policy)
        reg.add("prefetcher", "beta", _policy)
        with pytest.raises(ConfigError, match=r"alpha, beta"):
            reg.get("prefetcher", "gamma")

    def test_frozen_after_first_build(self):
        reg = Registry()
        reg.add("policy", "lru", _policy)
        assert not reg.frozen
        reg.build("policy", "lru")
        assert reg.frozen
        with pytest.raises(RegistryError, match="frozen"):
            reg.add("policy", "late", _policy)

    def test_lookup_does_not_freeze(self):
        # names()/get() power CLI help text at parse time; only build()
        # (actually constructing a component) seals the registry.
        reg = Registry()
        reg.add("policy", "lru", _policy)
        reg.names("policy")
        reg.get("policy", "lru")
        assert not reg.frozen
        reg.add("policy", "second", _policy)

    def test_pair_separator_reserved_for_setup_side_kinds(self):
        reg = Registry()
        for kind in ("policy", "prefetcher", "setup"):
            with pytest.raises(RegistryError, match="reserved pair separator"):
                reg.add(kind, "a+b", _policy)
        # Workload names may contain '+' (the suite has "B+T").
        reg.add("workload", "B+T", object())

    def test_names_sorted_regardless_of_insertion_order(self):
        reg = Registry()
        for name in ("zeta", "alpha", "mid"):
            reg.add("policy", name, _policy)
        assert reg.names("policy") == ("alpha", "mid", "zeta")

    def test_non_callable_builder_not_buildable(self):
        reg = Registry()
        reg.add("policy", "desc-only", 42)
        with pytest.raises(RegistryError, match="not buildable"):
            reg.build("policy", "desc-only")


class TestPairSetups:
    def test_split_pair_name(self):
        assert split_pair_name("lru+ngram") == ("lru", "ngram")
        assert split_pair_name("baseline") is None
        assert split_pair_name("+ngram") is None
        assert split_pair_name("lru+") is None
        assert split_pair_name("a+b+c") is None

    def test_pair_setup_resolves_without_registration(self):
        assert registry.setup_components("mhpe+ngram") == ("mhpe", "ngram")

    def test_unknown_setup_lists_registered_setups(self):
        with pytest.raises(ConfigError) as err:
            registry.setup_components("bogus")
        message = str(err.value)
        for known in ("baseline", "cppe", "ngram"):
            assert known in message

    def test_canonical_name_folds_pairs_into_named_setups(self):
        # The shootout must share cache keys with named-setup runs.
        assert canonical_setup_name("lru", "locality") == "baseline"
        assert canonical_setup_name("mhpe", "pattern-s2") == "cppe"
        assert canonical_setup_name("random", "tree") == pair_setup_name(
            "random", "tree"
        )

    def test_build_setup_returns_fresh_instances(self):
        p1, f1 = registry.build_setup("baseline")
        p2, f2 = registry.build_setup("lru+locality")
        assert type(p1) is type(p2)
        assert type(f1) is type(f2)
        assert p1 is not p2 and f1 is not f2


class TestPluginDiscovery:
    def test_env_modules_sorted_and_deduplicated(self):
        raw = "zeta.plugin, alpha.plugin:zeta.plugin,  mid.plugin"
        assert registry._plugin_env_modules(raw) == [
            "alpha.plugin",
            "mid.plugin",
            "zeta.plugin",
        ]
        assert registry._plugin_env_modules("") == []

    def test_discovery_imports_in_sorted_order(self, monkeypatch):
        imported = []
        for name in ("corpus_zeta_plug", "corpus_alpha_plug"):
            module = types.ModuleType(name)
            monkeypatch.setitem(sys.modules, name, module)
            imported.append(name)
        result = registry._discover_plugins(
            Registry(), "corpus_zeta_plug,corpus_alpha_plug"
        )
        assert result == ("corpus_alpha_plug", "corpus_zeta_plug")

    def test_discovery_is_deterministic_across_orderings(self, monkeypatch):
        for name in ("corpus_a_plug", "corpus_b_plug"):
            monkeypatch.setitem(sys.modules, name, types.ModuleType(name))
        first = registry._discover_plugins(
            Registry(), "corpus_b_plug:corpus_a_plug"
        )
        second = registry._discover_plugins(
            Registry(), "corpus_a_plug,corpus_b_plug"
        )
        assert first == second == ("corpus_a_plug", "corpus_b_plug")

    def test_broken_plugin_fails_loudly(self):
        with pytest.raises(ConfigError, match="failed to import"):
            registry._discover_plugins(
                Registry(), "definitely_not_an_importable_module_xyz"
            )

    def test_in_tree_components_are_not_plugins(self):
        for kind in ("policy", "prefetcher", "setup"):
            for entry in registry.items(kind):
                assert not entry.plugin, entry

    def test_plugin_flag_from_origin(self):
        assert Registration("policy", "x", _policy, origin="my_lab.pol").plugin
        assert not Registration(
            "policy", "x", _policy, origin="repro.policies.lru"
        ).plugin


class TestPluginFingerprintIsolation:
    """Plugin identity enters the cache key only when actually used."""

    @pytest.fixture()
    def plugin_registry(self, monkeypatch):
        reg = Registry()
        reg.add("policy", "lru", _policy, origin="repro.policies.reserved_lru")
        reg.add(
            "prefetcher",
            "markov",
            _policy,
            fingerprint_fields=("prefetch",),
            origin="my_lab.prefetchers",
        )
        reg.add(
            "prefetcher", "locality", _policy, origin="repro.prefetch.locality"
        )
        reg.add(
            "setup", "baseline", ("lru", "locality"), origin="repro.harness"
        )
        monkeypatch.setattr(registry, "_default", reg)
        return reg

    def test_core_setup_payload_is_none(self, plugin_registry):
        assert plugin_components_payload("baseline") is None
        assert plugin_components_payload("lru+locality") is None

    def test_plugin_component_pins_identity(self, plugin_registry):
        payload = plugin_components_payload("lru+markov")
        assert payload == {
            "prefetcher": {
                "name": "markov",
                "origin": "my_lab.prefetchers",
                "fingerprint_fields": ["prefetch"],
            }
        }

    def test_plugin_component_changes_cache_key(self, plugin_registry):
        core = spec_fingerprint(RunSpec("SRD", "lru+locality", 0.5))
        plug = spec_fingerprint(RunSpec("SRD", "lru+markov", 0.5))
        assert core != plug

    def test_every_real_setup_payload_is_none(self):
        # The load-bearing byte-identity precondition: no in-tree setup
        # (named or compositional) ever grows a "components" section.
        for setup in registry.names("setup"):
            assert plugin_components_payload(setup) is None
        for policy in registry.names("policy"):
            for prefetcher in registry.names("prefetcher"):
                pair = pair_setup_name(policy, prefetcher)
                assert plugin_components_payload(pair) is None


#: Golden spec fingerprints captured BEFORE the registry refactor (the 12
#: pre-existing setups) plus the two ngram setups added with it.  A digest
#: change here means every warm result cache in existence is invalidated —
#: never update these without meaning exactly that.
GOLDEN_FINGERPRINTS = {
    ("baseline", "SRD"): "e165e2be35529e49e9ae64cc21f60a668862c938bc74e7ca7a8a5f5e50aab861",
    ("baseline", "NW"): "c79c1bbd99803ac30630175872cdf7754d04e6f2f1db4af10ddf13a3fa31a251",
    ("cppe", "SRD"): "cded930c8f198b583b99239d058f1e55386981a6689e5387843cd38574b2b605",
    ("cppe", "NW"): "aae3a630385e2ba17123e766bad3fd605acec78ac416d2bd0acd73c4fd71ffae",
    ("cppe-ngram", "SRD"): "a914ee28ebf40389b87931f08c81354d402324f2633c8a6e96653132473fb28c",
    ("cppe-ngram", "NW"): "2dd04d9d2e4ef0bd8c086915f0b588a4be7ce4ad920c3a2e5e2f861c59370bb1",
    ("cppe-s1", "SRD"): "20aa44b8d54eaed760a9c4d0aeb39f3391f3a33e373900f0302e759aa6f7cd7c",
    ("cppe-s1", "NW"): "2e4a30182262299df6f2eb59cce6894e6561684f66ec91983c34b7b17e58c5a8",
    ("hpe", "SRD"): "af63b196d860a07de101fe837167daa39a0845dec706dc96891b614777fc1caf",
    ("hpe", "NW"): "7a860fd38bb92b17a136dfa720bfc5e1f2f3784ae910b9bb1ad0b7584e3184f7",
    ("lru-10", "SRD"): "2f16fbeb447d61ef122a59cc14a963fd6ddb1008aeb8d36d5f8560ccc1a586ea",
    ("lru-10", "NW"): "1008dfaaab5183df545eb36b7436592fbb71e6bed1047b8dc3631a37e8dc6446",
    ("lru-20", "SRD"): "3bc7bb0a1b665a8997e7ccabb354c43da80a36cfc64eadb707ccb5e370d32d5a",
    ("lru-20", "NW"): "715a4a540f946cc3534000c6a96a722daccda293d15465fdddf6ca9a9e2d3d6a",
    ("lru-pattern", "SRD"): "8205485deed4a0519872817667e5184f18feb4b08aa778e14df067cd1f7e993c",
    ("lru-pattern", "NW"): "ad3cb024fb5c0816d950d0780ff64c80a18fe12e33935db029dc7d01b6df2f50",
    ("mhpe-naive", "SRD"): "94b161b4012ab5f063e2f1f34fd39f402333af89478842fe85f9366ffa7c3150",
    ("mhpe-naive", "NW"): "3813955dff5d14b55efa463450040ff9ce16a15ad2545bd4ebbac56516b3ea03",
    ("ngram", "SRD"): "10295e0a03561a0b0e9a8493b14cc2c90a0f8d4e02ccfb94aafec86259aeecd6",
    ("ngram", "NW"): "f20fce13bd5360d72f8226938b8f47611246bd9eacc6921716d0a3fd29e3b5aa",
    ("no-prefetch", "SRD"): "94b125510482aa04299994f275cd532b36d17840dadcd0877934e1ca9ef8a8d2",
    ("no-prefetch", "NW"): "adc9677863d06915126ea526c6eb0152908efdec27d8314db3877ed6418ab11d",
    ("random", "SRD"): "947d8404bc684e13253305673a940fc9fd0a6df381e158604fc9d5dd2da928e2",
    ("random", "NW"): "d7f9c30aab348fb27fb51886c4ff21b79466011871262b851e8115e4fdcdf049",
    ("stop-on-full", "SRD"): "6e5da331df2d278adf9dd2ccd159d09c13ba317771cd43604ce0c6564b0d1576",
    ("stop-on-full", "NW"): "3069f97edec98bcfc21641cfacb3a3f9bef89fa1b3f78fa65413df821f095c59",
    ("tree", "SRD"): "0a97e541350c88f19cd3a2e849cba0224c94a21881e826c10b562e2fc2f1eebe",
    ("tree", "NW"): "72e4b212d0c06c32ece729e6b0a5b4a7077fdbf29147929bc0665af57c05a828",
}


class TestGoldenCacheKeys:
    def test_every_registered_setup_has_golden_keys(self):
        covered = {setup for setup, _ in GOLDEN_FINGERPRINTS}
        assert covered == set(registry.names("setup"))

    @pytest.mark.parametrize(
        "setup,app", sorted(GOLDEN_FINGERPRINTS), ids=lambda v: str(v)
    )
    def test_fingerprint_is_byte_identical(self, setup, app):
        if app == "SRD":
            spec = RunSpec("SRD", setup, 0.5)
            digest = spec_fingerprint(spec)
        else:
            spec = RunSpec("NW", setup, 0.75, scale=0.5, seed=3)
            digest = spec_fingerprint(spec, SimConfig(seed=7))
        assert digest == GOLDEN_FINGERPRINTS[(setup, app)]


class TestRegistryShape:
    def test_kinds_closed_set(self):
        assert KINDS == ("policy", "prefetcher", "setup", "workload")

    def test_all_core_components_registered(self):
        assert set(registry.names("policy")) >= {
            "lru", "lru-10", "lru-20", "mhpe", "hpe", "random",
        }
        assert set(registry.names("prefetcher")) >= {
            "locality", "pattern-s1", "pattern-s2", "tree", "ngram", "none",
        }
        assert len(registry.names("workload")) >= 10

    def test_setups_resolve_to_registered_components(self):
        policies = set(registry.names("policy"))
        prefetchers = set(registry.names("prefetcher"))
        for setup in registry.names("setup"):
            policy, prefetcher = registry.setup_components(setup)
            assert policy in policies, setup
            assert prefetcher in prefetchers, setup
