"""Two-instance smoke scenario for the sharded multi-GPU simulator.

``repro.engine.multi.ShardedSimulator`` runs N independent MemorySystem
instances (one simulated GPU each) on a single event queue, splitting the
device capacity and the SM population across them.  This suite pins down
the minimal guarantees the scenario ships with:

* capacity sharding arithmetic (``split_capacity``);
* determinism: byte-identical results across repeated runs, through the
  serial ``run_matrix`` path and through ``ParallelRunner`` workers;
* the two-instance run is a *different* simulation than the classic
  single-instance one, with a distinct disk-cache key — while the default
  ``instances=1`` spec keeps its pre-refactor cache key.
"""

import dataclasses
import pickle

import pytest

from repro.config import SimConfig, SMConfig
from repro.engine.multi import ShardedSimulator, split_capacity
from repro.errors import SimulationError
from repro.harness.baselines import build_setup
from repro.harness.cache import _PICKLE_PROTOCOL, spec_fingerprint
from repro.harness.experiment import RunSpec, clear_cache, run_matrix
from repro.harness.parallel import ParallelRunner
from repro.workloads.suite import make_workload

FAST = SimConfig(sm=SMConfig(num_sms=4))

SMOKE = RunSpec("NW", "cppe", 0.5, scale=0.25, instances=2)


def result_bytes(result) -> bytes:
    return pickle.dumps(result, protocol=_PICKLE_PROTOCOL)


class TestSplitCapacity:
    def test_even_split(self):
        assert split_capacity(128, 2) == [64, 64]

    def test_remainder_goes_to_low_shards(self):
        assert split_capacity(131, 4) == [33, 33, 33, 32]

    def test_single_instance_is_identity(self):
        assert split_capacity(77, 1) == [77]

    def test_conserves_total(self):
        for total in (1, 63, 64, 65, 1000):
            for n in (1, 2, 3, 7):
                assert sum(split_capacity(total, n)) == total

    def test_rejects_bad_instance_count(self):
        with pytest.raises(SimulationError):
            split_capacity(128, 0)


class TestShardedSimulator:
    def _run(self):
        workload = make_workload("NW", scale=0.25)
        pairs = [build_setup("cppe") for _ in range(2)]
        return ShardedSimulator(
            workload,
            policies=[p for p, _ in pairs],
            prefetchers=[pf for _, pf in pairs],
            oversubscription=0.5,
            config=FAST,
        ).run()

    def test_two_instance_run_is_deterministic(self):
        assert result_bytes(self._run()) == result_bytes(self._run())

    def test_differs_from_single_instance(self):
        workload = make_workload("NW", scale=0.25)
        policy, prefetcher = build_setup("cppe")
        from repro.engine.simulator import Simulator

        single = Simulator(
            workload,
            policy=policy,
            prefetcher=prefetcher,
            oversubscription=0.5,
            config=FAST,
        ).run()
        sharded = self._run()
        assert sharded.total_cycles != single.total_cycles

    def test_policy_prefetcher_arity_enforced(self):
        workload = make_workload("NW", scale=0.25)
        policy, prefetcher = build_setup("cppe")
        with pytest.raises(SimulationError):
            ShardedSimulator(
                workload,
                policies=[policy],
                prefetchers=[prefetcher, prefetcher],
                oversubscription=0.5,
            )


class TestHarnessSmoke:
    def test_serial_and_parallel_paths_agree(self):
        clear_cache(disk=False)
        serial = run_matrix([SMOKE], config=FAST, cache=None)
        clear_cache(disk=False)
        runner = ParallelRunner(jobs=2, cache=None)
        (parallel_result,) = runner.run([SMOKE], config=FAST, use_cache=False)
        serial_result = serial[SMOKE.key()]
        assert dataclasses.asdict(serial_result) == dataclasses.asdict(
            parallel_result
        )

    def test_serial_path_repeatable(self):
        clear_cache(disk=False)
        first = run_matrix([SMOKE], config=FAST, cache=None)[SMOKE.key()]
        clear_cache(disk=False)
        second = run_matrix([SMOKE], config=FAST, cache=None)[SMOKE.key()]
        assert result_bytes(first) == result_bytes(second)


class TestCacheKeyCompatibility:
    def test_default_instances_elided_from_fingerprint(self):
        # The pre-refactor RunSpec had no ``instances`` field; eliding the
        # default keeps every previously cached entry reachable.
        spec = RunSpec("NW", "cppe", 0.5, scale=0.25)
        fields = dataclasses.asdict(spec)
        assert fields.pop("instances") == 1
        import hashlib
        import json

        from repro.harness.cache import CACHE_SCHEMA_VERSION

        # ``backend`` post-dates the key space too, and selects between
        # byte-identical implementations — elided just like ``instances``.
        config_fields = dataclasses.asdict(SimConfig())
        assert config_fields.pop("backend") == "object"
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "spec": fields,
            "config": config_fields,
        }
        legacy_key = hashlib.sha256(
            json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
        ).hexdigest()
        assert spec_fingerprint(spec) == legacy_key

    def test_nondefault_instances_changes_key(self):
        assert spec_fingerprint(SMOKE) != spec_fingerprint(
            dataclasses.replace(SMOKE, instances=1)
        )
