"""GMMU fault-service loop, migration, eviction, intervals (repro.memsim.gmmu)."""

import pytest

from repro.config import SimConfig, SMConfig, TranslationConfig, UVMConfig
from repro.engine.events import EventQueue
from repro.engine.stats import SimStats
from repro.errors import SimulationError, ThrashingCrash
from repro.memsim.fault import FarFault
from repro.memsim.gmmu import GMMU
from repro.policies.lru import LRUPolicy
from repro.prefetch.disabled import DisabledPrefetcher
from repro.prefetch.locality import LocalityPrefetcher


def make_gmmu(capacity=64, prefetcher=None, policy=None, config=None,
              footprint=None, crash_factor=None):
    if config is None:
        uvm = UVMConfig(crash_eviction_budget_factor=crash_factor)
        config = SimConfig(uvm=uvm)
    events = EventQueue()
    stats = SimStats()
    gmmu = GMMU(
        config=config,
        capacity_frames=capacity,
        events=events,
        stats=stats,
        policy=policy or LRUPolicy(),
        prefetcher=prefetcher or LocalityPrefetcher("continue"),
        translation=None,
        footprint_pages=footprint,
    )
    return gmmu, events, stats


def fault(gmmu, vpn, time=0, resolved=None, sm_id=0):
    record = [] if resolved is None else resolved
    f = FarFault(
        vpn=vpn, sm_id=sm_id, time=time, is_write=False,
        on_resolve=lambda t: record.append((vpn, t)),
    )
    gmmu.handle_fault(f)
    return record


class TestDemandMigration:
    def test_fault_migrates_chunk_and_resolves(self):
        gmmu, events, stats = make_gmmu()
        resolved = fault(gmmu, 100)
        events.run()
        assert resolved and resolved[0][0] == 100
        assert gmmu.is_resident(100)
        # Whole chunk migrated by the locality prefetcher.
        assert stats.pages_migrated == 16
        assert stats.demand_pages == 1
        assert stats.prefetched_pages == 15
        assert stats.fault_service_ops == 1

    def test_service_latency_includes_fault_and_transfer(self):
        gmmu, events, stats = make_gmmu()
        resolved = fault(gmmu, 100, time=0)
        events.run()
        expected = gmmu.uvm.fault_latency_cycles + 16 * gmmu.pcie.cycles_per_page
        assert resolved[0][1] == expected

    def test_demand_only_prefetcher_migrates_one_page(self):
        gmmu, events, stats = make_gmmu(prefetcher=DisabledPrefetcher())
        fault(gmmu, 100)
        events.run()
        assert stats.pages_migrated == 1
        assert gmmu.is_resident(100)
        assert not gmmu.is_resident(101)


class TestFaultMerging:
    def test_same_chunk_faults_merge(self):
        gmmu, events, stats = make_gmmu()
        r1 = fault(gmmu, 100, time=0)
        r2 = fault(gmmu, 101, time=5)
        events.run()
        assert stats.fault_service_ops == 1
        assert stats.merged_faults == 1
        assert r1 and r2
        # Both pages were demand pages (two faults attached).
        assert stats.demand_pages == 2

    def test_different_chunks_serialize(self):
        gmmu, events, stats = make_gmmu(capacity=256)
        r1 = fault(gmmu, 0, time=0)
        r2 = fault(gmmu, 100, time=0)
        events.run()
        assert stats.fault_service_ops == 2
        # Second service starts only after the first completes.
        assert r2[0][1] >= 2 * gmmu.uvm.fault_latency_cycles

    def test_fault_parallelism_overlaps_services(self):
        cfg = SimConfig(uvm=UVMConfig(fault_parallelism=2))
        gmmu, events, stats = make_gmmu(capacity=256, config=cfg)
        r1 = fault(gmmu, 0, time=0)
        r2 = fault(gmmu, 100, time=0)
        events.run()
        assert r2[0][1] < 2 * gmmu.uvm.fault_latency_cycles

    def test_queued_fault_resolved_without_service_if_page_arrived(self):
        gmmu, events, stats = make_gmmu()
        fault(gmmu, 100, time=0)
        # Fault to another page of the same chunk while the first is being
        # serviced: merges instead of a fresh service op.
        fault(gmmu, 110, time=1)
        events.run()
        assert stats.fault_service_ops == 1


class TestEviction:
    def test_eviction_triggered_at_capacity(self):
        gmmu, events, stats = make_gmmu(capacity=32)  # two chunks
        fault(gmmu, 0)
        events.run()
        fault(gmmu, 16)
        events.run()
        fault(gmmu, 32)  # needs eviction
        events.run()
        assert stats.chunks_evicted == 1
        assert stats.pages_evicted == 16
        assert not gmmu.is_resident(0)  # LRU victim was chunk 0
        assert gmmu.is_resident(32)

    def test_memory_full_flag(self):
        gmmu, events, _ = make_gmmu(capacity=32)
        assert not gmmu.memory_full
        fault(gmmu, 0)
        events.run()
        fault(gmmu, 16)
        events.run()
        assert gmmu.memory_full

    def test_touch_updates_bits_and_untouch(self):
        gmmu, events, stats = make_gmmu(capacity=32)
        fault(gmmu, 0)
        events.run()
        for vpn in range(0, 8):
            gmmu.touch_page(0, vpn, False, events.now)
        entry = gmmu.chain.get(0)
        assert entry.touched_pages == 8
        assert entry.untouch_level() == 8

    def test_dirty_writeback_accounting(self):
        gmmu, events, stats = make_gmmu(capacity=32)
        fault(gmmu, 0)
        events.run()
        gmmu.touch_page(0, 1, True, events.now)  # dirty one page
        fault(gmmu, 16)
        events.run()
        fault(gmmu, 32)
        events.run()
        assert stats.dirty_pages_written_back == 1
        assert stats.bytes_device_to_host == 4096

    def test_touch_nonresident_rejected(self):
        gmmu, events, _ = make_gmmu()
        with pytest.raises(SimulationError):
            gmmu.touch_page(0, 999, False, 0)

    def test_prefetch_accuracy_counted_at_eviction(self):
        gmmu, events, stats = make_gmmu(capacity=32)
        fault(gmmu, 0)
        events.run()
        for vpn in range(0, 4):  # demand page 0 + 3 prefetched pages touched
            gmmu.touch_page(0, vpn, False, events.now)
        fault(gmmu, 16)
        events.run()
        fault(gmmu, 32)
        events.run()
        assert stats.prefetched_pages_touched == 3


class TestIntervals:
    def test_interval_advances_every_64_pages(self):
        gmmu, events, stats = make_gmmu(capacity=1024)
        for chunk in range(4):
            fault(gmmu, chunk * 16)
            events.run()
        assert gmmu.current_interval == 1
        assert len(stats.intervals) == 1
        assert stats.intervals[0].faults == 4

    def test_partial_interval_not_recorded(self):
        gmmu, events, stats = make_gmmu(capacity=1024)
        fault(gmmu, 0)
        events.run()
        assert gmmu.current_interval == 0
        assert stats.intervals == []


class TestCrashModel:
    def test_crash_raised_when_budget_exceeded(self):
        gmmu, events, _ = make_gmmu(
            capacity=32, footprint=64, crash_factor=0.5
        )
        # Budget = 0.5 * 4 chunks = 2 evictions.
        with pytest.raises(ThrashingCrash):
            for i in range(8):
                fault(gmmu, i * 16, time=events.now)
                events.run()

    def test_no_crash_without_budget(self):
        gmmu, events, _ = make_gmmu(capacity=32, footprint=64)
        for i in range(8):
            fault(gmmu, i * 16, time=events.now)
            events.run()  # plenty of evictions, no crash


class TestDrainCheck:
    def test_clean_drain(self):
        gmmu, events, _ = make_gmmu()
        fault(gmmu, 0)
        events.run()
        gmmu.drain_check()

    def test_pending_fault_detected(self):
        gmmu, events, _ = make_gmmu()
        fault(gmmu, 0)
        # Event queue never run: migration still in flight.
        with pytest.raises(SimulationError):
            gmmu.drain_check()
