"""Failure injection: contract violations must be caught loudly, not
corrupt simulation state silently."""

import numpy as np
import pytest

from repro.config import SimConfig, SMConfig, TranslationConfig
from repro.engine.events import EventQueue
from repro.engine.simulator import Simulator
from repro.engine.stats import SimStats
from repro.errors import SimulationError
from repro.memsim.fault import FarFault
from repro.memsim.gmmu import GMMU
from repro.policies.base import EvictionPolicy
from repro.policies.lru import LRUPolicy
from repro.prefetch.base import Prefetcher
from repro.prefetch.locality import LocalityPrefetcher

from conftest import make_simple_workload

FAST = SimConfig(sm=SMConfig(num_sms=2), translation=TranslationConfig(enabled=False))


class OmittingPrefetcher(Prefetcher):
    """Violates the contract: never includes the demand page."""

    name = "broken-omit"

    def pages_to_migrate(self, vpn, memory_full, skip, time=0):
        return []


class NonSelectingPolicy(EvictionPolicy):
    """Violates the contract: claims victims it does not have."""

    name = "broken-select"

    def select_victims(self, frames_needed, time):
        return []


def _gmmu(policy=None, prefetcher=None, capacity=32):
    events = EventQueue()
    gmmu = GMMU(
        config=FAST,
        capacity_frames=capacity,
        events=events,
        stats=SimStats(),
        policy=policy or LRUPolicy(),
        prefetcher=prefetcher or LocalityPrefetcher("continue"),
    )
    return gmmu, events


class TestPrefetcherContract:
    def test_missing_demand_page_detected(self):
        gmmu, events = _gmmu(prefetcher=OmittingPrefetcher())
        fault = FarFault(vpn=5, sm_id=0, time=0, is_write=False,
                         on_resolve=lambda t: None)
        with pytest.raises(SimulationError, match="demand page"):
            gmmu.handle_fault(fault)


class TestPolicyContract:
    def test_policy_returning_nothing_detected(self):
        gmmu, events = _gmmu(policy=NonSelectingPolicy(), capacity=32)
        for chunk in range(3):  # third chunk needs an eviction
            fault = FarFault(vpn=chunk * 16, sm_id=0, time=events.now,
                             is_write=False, on_resolve=lambda t: None)
            if chunk < 2:
                gmmu.handle_fault(fault)
                events.run()
            else:
                with pytest.raises(SimulationError, match="contract"):
                    # The broken policy returns []; the GMMU detects that
                    # eviction made no progress instead of exhausting the
                    # frame allocator later.
                    gmmu.handle_fault(fault)
                    events.run()


class TestPolicyBaseGuards:
    def test_take_until_enough_raises_on_shortfall(self):
        from repro.errors import SimulationError as SE
        from repro.memsim.chunk_chain import ChunkEntry

        policy = LRUPolicy()
        from helpers import attach_policy
        attach_policy(policy)
        entry = ChunkEntry(1, 0)
        entry.resident_mask = 0b1
        with pytest.raises(SE, match="cannot free"):
            policy._take_until_enough([entry], frames_needed=5)


class TestSimulatorGuards:
    def test_event_budget_enforced(self):
        wl = make_simple_workload()
        sim = Simulator(wl, oversubscription=0.5, config=FAST, max_events=10)
        with pytest.raises(SimulationError, match="budget"):
            sim.run()

    def test_more_sms_than_trace_elements(self):
        # 2 accesses, 2 SMs: both get one access, run must complete.
        wl = make_simple_workload(footprint=64, accesses=[0, 1])
        result = Simulator(wl, oversubscription=None, config=FAST).run()
        assert result.stats.accesses == 2

    def test_single_access_workload(self):
        wl = make_simple_workload(footprint=64, accesses=[3])
        result = Simulator(wl, oversubscription=None, config=FAST).run()
        assert result.stats.accesses == 1
        assert result.stats.far_faults == 1
