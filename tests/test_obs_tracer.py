"""Event tracer and observability handle (repro.obs.tracer / .core)."""

import pickle

import pytest

from repro.obs import (
    DISABLED,
    EVENT_KINDS,
    NullTracer,
    Observability,
    ObsConfig,
    TraceEvent,
    Tracer,
    make_observability,
)


class TestTracer:
    def test_emit_records_event(self):
        tr = Tracer()
        tr.emit("fault", 100, vpn=7, sm=1)
        assert len(tr) == 1
        event = tr.events[0]
        assert (event.time, event.kind) == (100, "fault")
        assert event.args == {"vpn": 7, "sm": 1}
        assert event.run == ""

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            Tracer().emit("no_such_kind", 0)

    def test_every_declared_kind_emittable(self):
        tr = Tracer()
        for kind in EVENT_KINDS:
            tr.emit(kind, 0)
        assert len(tr) == len(EVENT_KINDS)

    def test_extend_tags_run_label(self):
        worker = Tracer()
        worker.emit("fault", 5, vpn=1)
        parent = Tracer()
        parent.extend(worker.events, run="NW@50%/cppe")
        assert parent.events[0].run == "NW@50%/cppe"
        assert worker.events[0].run == ""  # source untouched

    def test_of_kind_and_counts(self):
        tr = Tracer()
        tr.emit("fault", 0)
        tr.emit("eviction", 1)
        tr.emit("fault", 2)
        assert len(tr.of_kind("fault")) == 2
        assert tr.kind_counts() == {"eviction": 1, "fault": 2}

    def test_to_json_dict_sorted_and_minimal(self):
        event = TraceEvent(time=3, kind="pcie", args={"z": 1, "a": 2})
        assert list(event.to_json_dict()["args"]) == ["a", "z"]
        assert "run" not in event.to_json_dict()
        event.run = "r"
        assert event.to_json_dict()["run"] == "r"


class TestNullTracer:
    def test_disabled_and_noop(self):
        tr = NullTracer()
        assert tr.enabled is False
        tr.emit("fault", 0, vpn=1)
        assert len(tr) == 0


class TestObservability:
    def test_disabled_singleton(self):
        assert DISABLED.enabled is False
        assert DISABLED.tracer.enabled is False
        assert DISABLED.metrics.enabled is False

    def test_enabled_factory(self):
        obs = Observability.enabled_()
        assert obs.enabled
        assert obs.tracer.enabled and obs.metrics.enabled

    def test_make_observability_none_is_disabled(self):
        assert make_observability(None) is DISABLED
        assert make_observability(ObsConfig(trace=False, metrics=False)) is DISABLED

    def test_make_observability_partial(self):
        obs = make_observability(ObsConfig(trace=True, metrics=False))
        assert obs.tracer.enabled and not obs.metrics.enabled
        obs = make_observability(ObsConfig(trace=False, metrics=True))
        assert not obs.tracer.enabled and obs.metrics.enabled

    def test_config_roundtrip(self):
        obs = Observability.enabled_()
        assert obs.config() == ObsConfig(trace=True, metrics=True)

    def test_obsconfig_picklable(self):
        cfg = ObsConfig(trace=True, metrics=False)
        assert pickle.loads(pickle.dumps(cfg)) == cfg

    def test_absorb_merges_both_halves(self):
        worker = Observability.enabled_()
        worker.tracer.emit("fault", 1, vpn=2)
        worker.metrics.counter("faults").inc()
        parent = Observability.enabled_()
        parent.absorb("run-x", worker.tracer.events, worker.metrics.snapshot())
        assert parent.tracer.events[0].run == "run-x"
        assert parent.metrics.value("run-x/faults") == 1
