"""Analysis metrics and overhead model (repro.analysis)."""

import pytest

from repro.analysis.classify import classify_untouch_category, untouch_profile
from repro.analysis.metrics import (
    ENTRY_BYTES,
    OverheadReport,
    geomean,
    mean,
    normalize_to,
    overhead_report,
)
from repro.engine.simulator import SimulationResult
from repro.engine.stats import IntervalRecord, SimStats
from repro.errors import SimulationError


class TestAggregates:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == 2.0
        assert geomean([2.0, 2.0]) == 2.0

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])
        with pytest.raises(ValueError):
            geomean([])

    def test_normalize(self):
        assert normalize_to([2.0, 4.0], 2.0) == [1.0, 2.0]
        with pytest.raises(ValueError):
            normalize_to([1.0], 0.0)


class TestOverheadModel:
    def _result(self, chain=100, evicted=24, pattern=40, rate=0.5):
        r = SimulationResult("APP", "IV", "mhpe", "pattern", rate, 100, 200)
        r.stats.chain_length_peak = chain
        r.stats.evicted_buffer_length = evicted
        r.stats.pattern_buffer_peak = pattern
        return r

    def test_entry_arithmetic_matches_paper(self):
        # Section VI-C: 12 bytes per entry (8 B tag + 4 B bit set).
        assert ENTRY_BYTES == 12
        report = overhead_report(self._result())
        assert report.total_entries == 164
        assert report.total_bytes == 164 * 12
        assert report.total_kb == pytest.approx(164 * 12 / 1024)

    def test_pattern_buffer_fraction(self):
        report = overhead_report(self._result(chain=100, pattern=40))
        assert report.pattern_buffer_vs_chain == pytest.approx(0.4)

    def test_zero_chain_fraction(self):
        report = overhead_report(self._result(chain=0, pattern=0))
        assert report.pattern_buffer_vs_chain == 0.0

    def test_rejects_unlimited_memory_run(self):
        r = self._result()
        r.oversubscription = None
        with pytest.raises(SimulationError):
            overhead_report(r)


class TestUntouchProfile:
    def _result_with_intervals(self, specs):
        r = SimulationResult("APP", "IV", "mhpe", "pattern", 0.5, 100, 200)
        for i, (untouch, evicted) in enumerate(specs):
            r.stats.record_interval(
                IntervalRecord(index=i, untouch_total=untouch, chunks_evicted=evicted)
            )
        return r

    def test_only_active_intervals_counted(self):
        # Cold intervals (no evictions) precede the oversubscribed phase.
        r = self._result_with_intervals(
            [(0, 0), (0, 0), (10, 4), (20, 4), (5, 4), (1, 4), (99, 4)]
        )
        p = untouch_profile(r)
        assert p.per_interval == [10, 20, 5, 1, 99]
        assert p.max_first_four == 20
        assert p.total_first_four == 36

    def test_no_evictions(self):
        p = untouch_profile(self._result_with_intervals([(0, 0)]))
        assert p.max_first_four == 0
        assert p.total_first_four == 0

    def test_classification_thresholds(self):
        high = untouch_profile(self._result_with_intervals([(40, 4)]))
        assert classify_untouch_category(high) == "high-untouch"
        medium = untouch_profile(
            self._result_with_intervals([(12, 4), (12, 4), (12, 4), (12, 4)])
        )
        assert classify_untouch_category(medium) == "medium-untouch"
        low = untouch_profile(self._result_with_intervals([(2, 4), (3, 4)]))
        assert classify_untouch_category(low) == "low-untouch"
