"""Trace exporters (repro.obs.export)."""

import json

from repro.obs import (
    INTERVAL_COLUMNS,
    TraceEvent,
    chrome_trace,
    interval_rows,
    validate_chrome_trace,
    write_chrome_trace,
    write_intervals,
    write_jsonl,
)


def _events():
    return [
        TraceEvent(0, "run_start", {"label": "unit"}),
        TraceEvent(10, "fault", {"vpn": 3, "sm": 0}),
        TraceEvent(10, "migration", {"chunk": 0, "pages": 16, "dur": 140}),
        TraceEvent(150, "forward_distance", {"value": 4, "reason": "initial"}),
        TraceEvent(
            200,
            "interval",
            {
                "index": 0,
                "strategy": "mru",
                "forward_distance": 4,
                "untouch_level": 7,
                "wrong_evictions": 1,
                "faults": 12,
                "chunks_evicted": 2,
                "pattern_occupancy": 3,
                "bytes_h2d": 65536,
                "bytes_d2h": 4096,
            },
        ),
        TraceEvent(250, "run_end", {"crashed": False}),
    ]


class TestJsonl:
    def test_one_json_object_per_line(self, tmp_path):
        path = write_jsonl(_events(), tmp_path / "t.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == len(_events())
        first = json.loads(lines[0])
        assert first == {"time": 0, "kind": "run_start", "args": {"label": "unit"}}

    def test_run_label_preserved(self, tmp_path):
        events = [TraceEvent(1, "fault", {"vpn": 1}, run="r1")]
        path = write_jsonl(events, tmp_path / "t.jsonl")
        assert json.loads(path.read_text())["run"] == "r1"


class TestChromeTrace:
    def test_generated_trace_validates(self):
        assert validate_chrome_trace(chrome_trace(_events())) == []

    def test_process_and_thread_metadata(self):
        payload = chrome_trace(_events())
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        names = {e["name"] for e in meta}
        assert names == {"process_name", "thread_name"}
        lanes = {
            e["args"]["name"] for e in meta if e["name"] == "thread_name"
        }
        assert lanes == {"run", "gmmu", "policy", "prefetch", "pcie"}

    def test_migration_becomes_duration_slice(self):
        payload = chrome_trace(_events(), clock_hz=1e6)  # 1 cycle == 1 us
        slices = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == 1
        assert slices[0]["ts"] == 10.0
        assert slices[0]["dur"] == 140.0
        assert "dur" not in slices[0]["args"]

    def test_forward_distance_becomes_counter(self):
        payload = chrome_trace(_events())
        counters = [
            e for e in payload["traceEvents"]
            if e["ph"] == "C" and e["name"] == "forward_distance"
        ]
        assert counters and counters[0]["args"] == {"forward_distance": 4}

    def test_interval_emits_counter_tracks(self):
        payload = chrome_trace(_events())
        counter_names = {
            e["name"] for e in payload["traceEvents"] if e["ph"] == "C"
        }
        assert {"untouch_level", "wrong_evictions", "pattern_occupancy"} <= counter_names

    def test_runs_map_to_pids_in_first_appearance_order(self):
        events = [
            TraceEvent(0, "fault", {}, run="b"),
            TraceEvent(1, "fault", {}, run="a"),
            TraceEvent(2, "fault", {}, run="b"),
        ]
        payload = chrome_trace(events)
        procs = {
            e["args"]["name"]: e["pid"]
            for e in payload["traceEvents"]
            if e["name"] == "process_name"
        }
        assert procs == {"b": 1, "a": 2}

    def test_write_validates_and_is_deterministic(self, tmp_path):
        p1 = write_chrome_trace(_events(), tmp_path / "a.json")
        p2 = write_chrome_trace(_events(), tmp_path / "b.json")
        assert p1.read_bytes() == p2.read_bytes()
        assert validate_chrome_trace(json.loads(p1.read_text())) == []


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": "nope"}) != []

    def test_rejects_bad_phase(self):
        payload = {"traceEvents": [{"name": "x", "ph": "Z", "pid": 1, "tid": 1, "ts": 0}]}
        assert any("phase" in e for e in validate_chrome_trace(payload))

    def test_rejects_missing_dur_on_slice(self):
        payload = {"traceEvents": [{"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": 0}]}
        assert any("dur" in e for e in validate_chrome_trace(payload))

    def test_rejects_negative_ts(self):
        payload = {"traceEvents": [{"name": "x", "ph": "i", "s": "t", "pid": 1, "tid": 1, "ts": -5}]}
        assert any("ts" in e for e in validate_chrome_trace(payload))

    def test_rejects_non_integer_pid(self):
        payload = {"traceEvents": [{"name": "x", "ph": "i", "pid": "p", "tid": 1, "ts": 0}]}
        assert any("pid" in e for e in validate_chrome_trace(payload))

    def test_rejects_bad_instant_scope(self):
        payload = {"traceEvents": [{"name": "x", "ph": "i", "s": "q", "pid": 1, "tid": 1, "ts": 0}]}
        assert any("scope" in e for e in validate_chrome_trace(payload))


class TestIntervals:
    def test_rows_follow_column_order(self):
        rows = interval_rows(_events())
        assert len(rows) == 1
        row = rows[0]
        assert set(INTERVAL_COLUMNS) == set(row)
        assert row["forward_distance"] == 4
        assert row["untouch_level"] == 7
        assert row["strategy"] == "mru"
        assert row["pattern_occupancy"] == 3
        assert row["end_time"] == 200

    def test_missing_telemetry_renders_empty(self):
        rows = interval_rows([TraceEvent(5, "interval", {"index": 0})])
        assert rows[0]["forward_distance"] == ""

    def test_tsv_roundtrip(self, tmp_path):
        path = write_intervals(_events(), tmp_path / "intervals.tsv")
        lines = path.read_text().splitlines()
        assert lines[0].split("\t") == list(INTERVAL_COLUMNS)
        cells = dict(zip(INTERVAL_COLUMNS, lines[1].split("\t")))
        assert cells["strategy"] == "mru"
        assert cells["bytes_h2d"] == "65536"
