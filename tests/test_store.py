"""Artifact persistence (repro.harness.store)."""

import pytest

from repro.errors import ReproError
from repro.harness.figures import FigureResult
from repro.harness.store import load_artifact, save_artifact
from repro.harness.tables import TableResult


class TestRoundTrip:
    def test_figure_roundtrip(self, tmp_path):
        fig = FigureResult(
            name="figX",
            description="demo",
            series={"cppe": {"SRD": 2.0, "MVT": None}},
            averages={"cppe (mean)": 2.0},
            notes=["a note"],
        )
        path = save_artifact(fig, tmp_path / "figX.json")
        loaded = load_artifact(path)
        assert isinstance(loaded, FigureResult)
        assert loaded.name == "figX"
        assert loaded.series["cppe"]["SRD"] == 2.0
        assert loaded.series["cppe"]["MVT"] is None
        assert loaded.averages == fig.averages
        assert loaded.notes == ["a note"]

    def test_table_roundtrip(self, tmp_path):
        tab = TableResult(
            name="tabX",
            description="demo",
            headers=["a", "b"],
            rows=[["x", 1], ["y", 2]],
        )
        path = save_artifact(tab, tmp_path / "sub" / "tabX.json")
        loaded = load_artifact(path)
        assert isinstance(loaded, TableResult)
        assert loaded.rows == [["x", 1], ["y", 2]]
        assert loaded.as_dict() == {("x",): 1, ("y",): 2}

    def test_render_survives_roundtrip(self, tmp_path):
        tab = TableResult("t", "d", ["h"], [[1]])
        path = save_artifact(tab, tmp_path / "t.json")
        assert load_artifact(path).render() == tab.render()

    def test_rejects_non_artifact(self, tmp_path):
        with pytest.raises(ReproError):
            save_artifact({"not": "an artifact"}, tmp_path / "x.json")

    def test_rejects_unknown_kind(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text('{"kind": "mystery"}')
        with pytest.raises(ReproError):
            load_artifact(p)


class TestDocgen:
    def test_generate_subset(self, tmp_path):
        from repro.harness.docgen import generate

        out = generate(
            tmp_path / "EXP.md",
            scale=0.5,
            json_dir=tmp_path / "json",
            names=["fig3"],
            log=lambda s: None,
        )
        text = out.read_text()
        assert "## fig3" in text
        assert "**Paper:**" in text and "**Measured:**" in text
        assert (tmp_path / "json" / "fig3.json").exists()
