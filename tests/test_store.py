"""Artifact persistence (repro.harness.store)."""

import os

import pytest

from repro.errors import ReproError
from repro.harness.figures import FigureResult
from repro.harness.store import atomic_write_text, load_artifact, save_artifact
from repro.harness.tables import TableResult


class TestRoundTrip:
    def test_figure_roundtrip(self, tmp_path):
        fig = FigureResult(
            name="figX",
            description="demo",
            series={"cppe": {"SRD": 2.0, "MVT": None}},
            averages={"cppe (mean)": 2.0},
            notes=["a note"],
        )
        path = save_artifact(fig, tmp_path / "figX.json")
        loaded = load_artifact(path)
        assert isinstance(loaded, FigureResult)
        assert loaded.name == "figX"
        assert loaded.series["cppe"]["SRD"] == 2.0
        assert loaded.series["cppe"]["MVT"] is None
        assert loaded.averages == fig.averages
        assert loaded.notes == ["a note"]

    def test_table_roundtrip(self, tmp_path):
        tab = TableResult(
            name="tabX",
            description="demo",
            headers=["a", "b"],
            rows=[["x", 1], ["y", 2]],
        )
        path = save_artifact(tab, tmp_path / "sub" / "tabX.json")
        loaded = load_artifact(path)
        assert isinstance(loaded, TableResult)
        assert loaded.rows == [["x", 1], ["y", 2]]
        assert loaded.as_dict() == {("x",): 1, ("y",): 2}

    def test_render_survives_roundtrip(self, tmp_path):
        tab = TableResult("t", "d", ["h"], [[1]])
        path = save_artifact(tab, tmp_path / "t.json")
        assert load_artifact(path).render() == tab.render()

    def test_rejects_non_artifact(self, tmp_path):
        with pytest.raises(ReproError):
            save_artifact({"not": "an artifact"}, tmp_path / "x.json")

    def test_rejects_unknown_kind(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text('{"kind": "mystery"}')
        with pytest.raises(ReproError):
            load_artifact(p)


class TestAtomicWrites:
    """Regression: artifact writes are atomic and explicitly utf-8.

    The old ``Path.write_text(...)`` path could leave a truncated JSON
    file behind when the process died mid-write, and its byte encoding
    followed the host locale.  ``atomic_write_text`` stages a temp file
    and ``os.replace``s it into place.
    """

    def test_writes_utf8_regardless_of_locale(self, tmp_path):
        target = tmp_path / "note.txt"
        atomic_write_text(target, "µ-benchmark — ✓")
        assert target.read_bytes().decode("utf-8") == "µ-benchmark — ✓"

    def test_no_temp_residue_after_success(self, tmp_path):
        atomic_write_text(tmp_path / "a.json", "{}")
        assert [p.name for p in tmp_path.iterdir()] == ["a.json"]

    def test_creates_parent_directories(self, tmp_path):
        path = atomic_write_text(tmp_path / "deep" / "er" / "a.txt", "x")
        assert path.read_text(encoding="utf-8") == "x"

    def test_interrupted_write_preserves_old_content(self, tmp_path, monkeypatch):
        target = tmp_path / "state.json"
        atomic_write_text(target, "old complete content")

        def exploding_replace(src, dst):
            raise OSError("simulated crash at the replace boundary")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            atomic_write_text(target, "new content that never lands")
        monkeypatch.undo()
        # Readers only ever observe the previous complete file...
        assert target.read_text(encoding="utf-8") == "old complete content"
        # ...and the staged temp file is cleaned up.
        assert [p.name for p in tmp_path.iterdir()] == ["state.json"]

    def test_save_artifact_interrupted_keeps_loadable_artifact(
        self, tmp_path, monkeypatch
    ):
        fig = FigureResult("figX", "demo", series={"cppe": {"SRD": 2.0}})
        path = save_artifact(fig, tmp_path / "figX.json")

        def exploding_replace(src, dst):
            raise OSError("simulated crash")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            save_artifact(
                FigureResult("figX", "newer", series={}), tmp_path / "figX.json"
            )
        monkeypatch.undo()
        loaded = load_artifact(path)
        assert loaded.description == "demo"  # the complete old artifact

    def test_save_artifact_unicode_roundtrip(self, tmp_path):
        fig = FigureResult(
            "figµ", "naïve → tuned", series={"cppe": {"SRD": 1.0}},
            notes=["±5% error bars"],
        )
        loaded = load_artifact(save_artifact(fig, tmp_path / "figµ.json"))
        assert loaded.name == "figµ"
        assert loaded.description == "naïve → tuned"
        assert loaded.notes == ["±5% error bars"]


class TestDocgen:
    def test_generate_subset(self, tmp_path):
        from repro.harness.docgen import generate

        out = generate(
            tmp_path / "EXP.md",
            scale=0.5,
            json_dir=tmp_path / "json",
            names=["fig3"],
            log=lambda s: None,
        )
        text = out.read_text()
        assert "## fig3" in text
        assert "**Paper:**" in text and "**Measured:**" in text
        assert (tmp_path / "json" / "fig3.json").exists()
