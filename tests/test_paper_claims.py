"""Shape-level checks of the paper's headline claims.

These tests run the real harness on representative applications (full
scale, so the paper's fixed interval geometry applies) and assert the
*direction and rough magnitude* of each claim — who wins and by what kind
of factor — not absolute cycle counts.  They are the executable summary of
EXPERIMENTS.md.
"""

import pytest

from repro.harness.experiment import RunSpec, run_one


def speedup(app, setup, rate, reference="baseline"):
    cand = run_one(RunSpec(app, setup, rate))
    ref = run_one(RunSpec(app, reference, rate))
    return cand.speedup_over(ref)


class TestFig8Claims:
    """CPPE vs the baseline (Section VI-B)."""

    @pytest.mark.parametrize("app", ["SRD", "HSD", "MRQ", "STN"])
    def test_cppe_wins_on_thrashing_type_iv(self, app):
        assert speedup(app, "cppe", 0.5) > 1.2

    @pytest.mark.parametrize("app", ["2DC", "3DC"])
    def test_cppe_neutral_on_streaming_type_i(self, app):
        assert speedup(app, "cppe", 0.5) == pytest.approx(1.0, abs=0.1)

    @pytest.mark.parametrize("app", ["B+T", "HYB"])
    def test_cppe_close_to_baseline_on_type_vi(self, app):
        # Paper: similar to baseline (LRU-friendly); slight loss tolerated.
        assert speedup(app, "cppe", 0.5) > 0.8

    @pytest.mark.parametrize("app", ["MVT", "BIC"])
    def test_cppe_rescues_strided_crashers(self, app):
        assert speedup(app, "cppe", 0.5) > 2.0

    @pytest.mark.parametrize("app", ["SAD", "NW", "HIS"])
    def test_pattern_prefetcher_wins_on_severe_thrashers(self, app):
        assert speedup(app, "cppe", 0.5) > 1.3

    def test_average_speedup_band(self):
        # Paper: 1.56x/1.64x average.  Accept a generous band around it.
        apps = ["HOT", "BKP", "SAD", "NW", "MVT", "SRD", "HSD", "STN",
                "HIS", "B+T", "HYB"]
        speedups = [speedup(a, "cppe", 0.5) for a in apps]
        avg = sum(speedups) / len(speedups)
        assert 1.2 < avg < 2.5


class TestFig3Claims:
    """Reserved LRU's limits (Inefficiency 2)."""

    def test_reserved_lru_gain_on_thrashing_is_limited(self):
        # Gains exist but stay well below CPPE's.
        for app in ("HSD", "MRQ", "STN"):
            reserved = speedup(app, "lru-20", 0.5)
            cppe = speedup(app, "cppe", 0.5)
            assert reserved < cppe

    @pytest.mark.parametrize("app", ["B+T", "HYB"])
    def test_reserved_lru_hurts_capacity_sensitive_type_vi(self, app):
        assert speedup(app, "lru-20", 0.5) < 0.9

    @pytest.mark.parametrize("app", ["B+T", "HYB"])
    def test_random_hurts_type_vi(self, app):
        assert speedup(app, "random", 0.5) < 0.9


class TestFig4Claims:
    """Naive prefetch under oversubscription thrashes (Inefficiency 3)."""

    @pytest.mark.parametrize("app", ["SAD", "NW", "MVT", "BIC"])
    def test_prefetch_always_multiplies_evictions(self, app):
        always = run_one(RunSpec(app, "baseline", 0.5))
        off = run_one(RunSpec(app, "stop-on-full", 0.5))
        ratio = always.stats.chunks_evicted / max(1, off.stats.chunks_evicted)
        assert ratio > 2.0

    def test_streaming_apps_unaffected(self):
        always = run_one(RunSpec("2DC", "baseline", 0.5))
        off = run_one(RunSpec("2DC", "stop-on-full", 0.5))
        ratio = always.stats.chunks_evicted / max(1, off.stats.chunks_evicted)
        assert ratio < 1.2


class TestFig10Claims:
    """Disabling prefetch when full is not one-size-fits-all."""

    @pytest.mark.parametrize("app", ["HOT", "2DC", "HSD"])
    def test_disabling_prefetch_slows_regular_apps(self, app):
        assert speedup(app, "stop-on-full", 0.5) < 0.9

    @pytest.mark.parametrize("app", ["MVT", "BIC"])
    def test_disabling_prefetch_helps_severe_thrashers(self, app):
        assert speedup(app, "stop-on-full", 0.5) > 1.0

    @pytest.mark.parametrize("app", ["MVT", "BIC", "NW"])
    def test_cppe_beats_disabling_prefetch(self, app):
        cppe = run_one(RunSpec(app, "cppe", 0.5))
        stop = run_one(RunSpec(app, "stop-on-full", 0.5))
        assert cppe.speedup_over(stop) > 1.0


class TestFig7Claims:
    """Pattern deletion schemes (Section VI-B)."""

    def test_scheme2_wins_for_fixed_stride_his(self):
        s1 = run_one(RunSpec("HIS", "cppe-s1", 0.5))
        s2 = run_one(RunSpec("HIS", "cppe", 0.5))
        assert s2.speedup_over(s1) >= 1.0

    def test_schemes_similar_for_mvt(self):
        s1 = run_one(RunSpec("MVT", "cppe-s1", 0.5))
        s2 = run_one(RunSpec("MVT", "cppe", 0.5))
        assert 0.8 < s2.speedup_over(s1) < 1.25


class TestCoordinationAblation:
    """Both halves of CPPE contribute (the paper's core thesis)."""

    def test_mhpe_alone_wins_on_thrashing(self):
        assert speedup("SRD", "mhpe-naive", 0.5) > 1.2

    def test_pattern_prefetch_alone_wins_on_strided(self):
        assert speedup("MVT", "lru-pattern", 0.5) > 1.5

    def test_full_cppe_at_least_matches_either_half_on_its_home_turf(self):
        # Full CPPE should not lose badly to either component alone.
        assert speedup("SRD", "cppe", 0.5) >= 0.9 * speedup("SRD", "mhpe-naive", 0.5)
        assert speedup("MVT", "cppe", 0.5) >= 0.9 * speedup("MVT", "lru-pattern", 0.5)
