"""Chunk chain structure and partitions (repro.memsim.chunk_chain)."""

import pytest

from repro.errors import SimulationError
from repro.memsim.chunk_chain import ChunkChain, ChunkEntry


def chain_with(ids, interval=0):
    chain = ChunkChain()
    for cid in ids:
        chain.insert_tail(ChunkEntry(cid, interval))
    return chain


class TestEntryBitVectors:
    def test_fresh_entry_empty(self):
        e = ChunkEntry(1, 0)
        assert e.resident_mask == 0
        assert e.touched_mask == 0
        assert e.untouch_level() == 0

    def test_resident_and_touched(self):
        e = ChunkEntry(1, 0)
        for i in range(16):
            e.mark_resident(i)
        for i in range(0, 16, 2):
            e.mark_touched(i)
        assert e.resident_pages == 16
        assert e.touched_pages == 8
        assert e.untouch_level() == 8

    def test_untouch_only_counts_resident(self):
        # A page touched in a previous residency but not migrated now must
        # not count toward untouch.
        e = ChunkEntry(1, 0)
        e.mark_resident(0)
        e.mark_touched(5)  # not resident
        assert e.untouch_level() == 1

    def test_clear_resident(self):
        e = ChunkEntry(1, 0)
        e.mark_resident(3)
        e.clear_resident(3)
        assert not e.is_resident(3)
        assert e.resident_pages == 0

    def test_partition_by_interval(self):
        e = ChunkEntry(1, interval=5)
        assert e.partition(5) == "new"
        assert e.partition(6) == "middle"
        assert e.partition(7) == "old"
        assert e.partition(100) == "old"


class TestChainLinking:
    def test_insert_tail_order(self):
        chain = chain_with([1, 2, 3])
        assert [e.chunk_id for e in chain.from_head()] == [1, 2, 3]
        assert [e.chunk_id for e in chain.from_tail()] == [3, 2, 1]

    def test_insert_head(self):
        chain = chain_with([1, 2])
        chain.insert_head(ChunkEntry(99, 0))
        assert [e.chunk_id for e in chain.from_head()] == [99, 1, 2]

    def test_duplicate_insert_rejected(self):
        chain = chain_with([1])
        with pytest.raises(SimulationError):
            chain.insert_tail(ChunkEntry(1, 0))
        with pytest.raises(SimulationError):
            chain.insert_head(ChunkEntry(1, 0))

    def test_remove(self):
        chain = chain_with([1, 2, 3])
        removed = chain.remove(2)
        assert removed.chunk_id == 2
        assert not removed.in_chain
        assert [e.chunk_id for e in chain.from_head()] == [1, 3]
        assert 2 not in chain

    def test_remove_missing_rejected(self):
        with pytest.raises(SimulationError):
            chain_with([1]).remove(9)

    def test_move_to_tail(self):
        chain = chain_with([1, 2, 3])
        chain.move_to_tail(1)
        assert [e.chunk_id for e in chain.from_head()] == [2, 3, 1]

    def test_move_missing_rejected(self):
        with pytest.raises(SimulationError):
            chain_with([1]).move_to_tail(9)

    def test_get(self):
        chain = chain_with([5])
        assert chain.get(5).chunk_id == 5
        assert chain.get(6) is None

    def test_len_and_peak(self):
        chain = chain_with([1, 2, 3])
        chain.remove(1)
        assert len(chain) == 2
        assert chain.length_peak == 3

    def test_iteration_is_removal_safe(self):
        chain = chain_with([1, 2, 3, 4])
        for entry in chain.from_head():
            chain.remove(entry.chunk_id)
        assert len(chain) == 0


class TestPartitionedCandidates:
    def _mixed_chain(self):
        """Chunks 1-2 old, 3 middle, 4 new (current interval = 5)."""
        chain = ChunkChain()
        for cid, interval in ((1, 1), (2, 2), (3, 4), (4, 5)):
            chain.insert_tail(ChunkEntry(cid, interval))
        return chain

    def test_old_partition_iterators(self):
        chain = self._mixed_chain()
        assert [e.chunk_id for e in chain.old_partition_from_head(5)] == [1, 2]
        assert [e.chunk_id for e in chain.old_partition_from_tail(5)] == [2, 1]

    def test_candidates_from_tail_priority(self):
        chain = self._mixed_chain()
        # Old first (MRU-first), then middle, then new.
        assert [e.chunk_id for e in chain.candidates_from_tail(5)] == [2, 1, 3, 4]

    def test_candidates_from_head_priority(self):
        chain = self._mixed_chain()
        assert [e.chunk_id for e in chain.candidates_from_head(5)] == [1, 2, 3, 4]

    def test_all_new_falls_back(self):
        chain = chain_with([1, 2, 3], interval=5)
        assert [e.chunk_id for e in chain.candidates_from_tail(5)] == [3, 2, 1]

    def test_empty_chain(self):
        chain = ChunkChain()
        assert chain.candidates_from_tail(0) == []
        assert chain.candidates_from_head(0) == []
