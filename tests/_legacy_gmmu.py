"""FROZEN pre-refactor monolith — differential-test fixture only.

This is the verbatim ``src/repro/memsim/gmmu.py`` as it stood before the
staged-MemorySystem refactor (commit 552ddf1), kept so
``tests/test_system_differential.py`` can prove the staged pipeline is
byte-identical to the monolith it replaced.  The only mechanical
adaptations: the ``PolicyContext`` construction uses the narrowed
``clock=`` protocol field (via the ``_MonolithClock`` adapter below)
instead of the removed ``get_interval`` callback — the values observed by
policies are identical.  Do not modernise this file.

Original docstring:

GPU Memory Management Unit + host-side UVM runtime.

The GMMU is the mechanism layer everything else plugs into.  It:

* receives far faults from SMs and merges duplicates into in-flight
  migrations (the replayable far-fault hardware of [9]);
* runs a (configurably parallel, default serial) **fault service loop**:
  each service operation consults the prefetcher for the page batch, makes
  room by asking the eviction policy for victim chunks, charges the 20 us
  service latency plus PCIe transfer time, and installs the pages;
* maintains the chunk chain's *mechanism* state (touch/resident/prefetch
  bit-vectors, the HPE-style counter pollution on prefetch);
* drives **intervals** — one interval per 64 migrated pages — calling the
  policy's ``on_interval_end`` with the telemetry records that Tables III
  and IV are built from;
* performs evictions: unmap + TLB shootdown + writeback accounting, then
  feeds the evicted chunk's touch pattern to the prefetcher (the CPPE
  coordination point).
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Dict, List, Optional

from repro.config import SimConfig
from repro.engine.events import EventQueue
from repro.engine.stats import IntervalRecord, SimStats
from repro.errors import SimulationError, ThrashingCrash
from repro.obs import DISABLED, Observability
from repro.policies.base import EvictionPolicy, PolicyContext
from repro.prefetch.base import PrefetchContext, Prefetcher
from repro.translation.hierarchy import TranslationHierarchy
from repro.memsim.chunk_chain import ChunkChain, ChunkEntry
from repro.memsim.device_memory import DeviceMemory
from repro.memsim.fault import FarFault, InFlightMigration
from repro.memsim.page_table import PageTable
from repro.memsim.pcie import PCIeLink

__all__ = ["GMMU"]


class _MonolithClock:
    """IntervalSource adapter over the monolith's interval counter."""

    def __init__(self, gmmu: "GMMU") -> None:
        self._gmmu = gmmu

    @property
    def current_interval(self) -> int:
        return self._gmmu._interval_index


class GMMU:
    """Unified-memory runtime for one simulated GPU."""

    def __init__(
        self,
        config: SimConfig,
        capacity_frames: int,
        events: EventQueue,
        stats: SimStats,
        policy: EvictionPolicy,
        prefetcher: Prefetcher,
        translation: Optional[TranslationHierarchy] = None,
        footprint_pages: Optional[int] = None,
        obs: Optional[Observability] = None,
    ):
        self.config = config
        self.uvm = config.uvm
        self.events = events
        self.stats = stats
        self.policy = policy
        self.prefetcher = prefetcher
        self.translation = translation
        self.obs = obs or DISABLED
        self._trace = self.obs.tracer

        self.device = DeviceMemory(capacity_frames)
        self.page_table = (
            translation.page_table if translation is not None
            else PageTable(config.translation.walker.levels)
        )
        self.chain = ChunkChain()
        self.pcie = PCIeLink(
            self.uvm.interconnect_gbps, self.uvm.clock_hz, self.uvm.page_size,
            obs=self.obs,
        )
        self.rng = random.Random(config.seed ^ 0x5EED)

        self._pending: Deque[FarFault] = deque()
        self._in_flight: Dict[int, InFlightMigration] = {}  # keyed by mig.token
        self._next_migration_token = 0
        self._covered: Dict[int, InFlightMigration] = {}  # vpn -> migration
        self._active_services = 0
        self._reserved_frames = 0
        self._pages_migrated = 0
        self._interval_index = 0
        self._interval_faults = 0
        self._interval_evictions = 0
        self._memory_full_seen = False
        self._footprint_pages = footprint_pages

        metrics = self.obs.metrics
        self._m_faults = metrics.counter("gmmu.far_faults")
        self._m_merged = metrics.counter("gmmu.merged_faults")
        self._m_evictions = metrics.counter("gmmu.chunks_evicted")
        self._h_batch = metrics.histogram("gmmu.batch_pages")

        policy.attach(
            PolicyContext(
                chain=self.chain,
                stats=stats,
                config=config,
                rng=self.rng,
                clock=_MonolithClock(self),
                obs=self.obs,
            )
        )
        prefetcher.attach(
            PrefetchContext(config=config, stats=stats, obs=self.obs)
        )

    # ------------------------------------------------------------------ API

    @property
    def current_interval(self) -> int:
        return self._interval_index

    @property
    def memory_full(self) -> bool:
        """True once a whole chunk no longer fits without eviction."""
        return self._free_unreserved < self.uvm.pages_per_chunk

    @property
    def _free_unreserved(self) -> int:
        """Free frames not already promised to an in-flight migration."""
        return self.device.free_frames - self._reserved_frames

    def is_resident(self, vpn: int) -> bool:
        return self.page_table.is_resident(vpn)

    def touch_page(self, sm_id: int, vpn: int, is_write: bool, time: int) -> None:
        """Record a successful access to a resident page."""
        self.page_table.record_access(vpn, is_write)
        ppc = self.uvm.pages_per_chunk
        entry = self.chain.get(vpn // ppc)
        if entry is None:
            raise SimulationError(f"resident vpn {vpn} has no chunk entry")
        entry.mark_touched(vpn % ppc)
        self.policy.on_page_touched(entry, vpn, time)

    def handle_fault(self, fault: FarFault) -> None:
        """Entry point for an SM's far fault."""
        self.stats.far_faults += 1
        self._interval_faults += 1
        self._m_faults.inc()
        ppc = self.uvm.pages_per_chunk
        self.policy.on_fault(fault.vpn, fault.vpn // ppc, fault.time)
        if self._trace.enabled:
            self._trace.emit(
                "fault", fault.time, chunk=fault.vpn // ppc,
                **fault.trace_args(),
            )

        covering = self._covered.get(fault.vpn)
        if covering is not None:
            # The page is already on its way: merge.
            covering.attach(fault)
            self.stats.merged_faults += 1
            self._m_merged.inc()
            return
        self._pending.append(fault)
        self._maybe_start_service(fault.time)

    # ------------------------------------------------------- service loop

    def _maybe_start_service(self, time: int) -> None:
        while (
            self._active_services < self.uvm.fault_parallelism and self._pending
        ):
            fault = self._pending.popleft()
            if not self._begin_service(fault, time):
                continue

    def _max_batch(self) -> int:
        """Largest allowed migration batch.

        Clamps aggressive prefetchers (the tree prefetcher can request a
        whole 2 MB region) to half of device memory: the driver never
        evicts the working set wholesale to make room for a prefetch.
        """
        return max(self.uvm.pages_per_chunk, self.device.capacity // 2)

    def _gather_pages(self, fault: FarFault, in_batch: set) -> Optional[List[int]]:
        """Consult the prefetcher for ``fault``; returns the page batch or
        None when the fault needs no migration of its own.

        ``in_batch`` holds pages already claimed by the service op being
        assembled; those are skipped like resident/in-flight pages and, when
        the demand page itself is among them, the fault simply joins the op.
        """
        if self._covered.get(fault.vpn) is not None or fault.vpn in in_batch:
            return None
        resident = self.page_table.is_resident
        covered = self._covered
        skip = lambda vpn: resident(vpn) or vpn in covered or vpn in in_batch
        pages = self.prefetcher.pages_to_migrate(
            fault.vpn, self.memory_full, skip, time=fault.time
        )
        if not pages or fault.vpn not in pages:
            raise SimulationError(
                f"prefetcher {self.prefetcher.name} did not include the "
                f"demand page {fault.vpn}"
            )
        max_batch = self._max_batch()
        if len(pages) > max_batch:
            # Prefetchers order the demand page first, so truncation keeps it.
            pages = pages[:max_batch]
        return pages

    def _begin_service(self, fault: FarFault, time: int) -> bool:
        """Start one fault-service op.  Returns False if the fault resolved
        without a new migration (page arrived while it was queued).

        With ``fault_batch_size > 1`` the op drains further pending faults
        from the buffer, amortising the base service latency across chunks
        (UVM batch processing; the paper's configuration services one fault
        group per op).
        """
        if self.page_table.is_resident(fault.vpn):
            fault.on_resolve(time)
            return False
        covering = self._covered.get(fault.vpn)
        if covering is not None:
            covering.attach(fault)
            self.stats.merged_faults += 1
            self._m_merged.inc()
            return False

        in_batch: set = set()
        pages = self._gather_pages(fault, in_batch)
        assert pages is not None  # neither covered nor in an empty batch
        batch_faults = [fault]
        batch_pages: List[int] = list(pages)
        in_batch.update(pages)

        budget = self.uvm.fault_batch_size - 1
        max_total = self._max_batch()
        while budget > 0 and self._pending and len(batch_pages) < max_total:
            nxt = self._pending[0]
            if self.page_table.is_resident(nxt.vpn):
                self._pending.popleft()
                nxt.on_resolve(time)
                continue
            extra = self._gather_pages(nxt, in_batch)
            if extra is None:
                # Covered by an in-flight migration or by this very batch.
                self._pending.popleft()
                if nxt.vpn in in_batch:
                    batch_faults.append(nxt)
                    self.stats.merged_faults += 1
                else:
                    covering = self._covered[nxt.vpn]
                    covering.attach(nxt)
                    self.stats.merged_faults += 1
                self._m_merged.inc()
                continue
            if len(batch_pages) + len(extra) > max_total:
                break
            self._pending.popleft()
            batch_faults.append(nxt)
            batch_pages.extend(extra)
            in_batch.update(extra)
            budget -= 1

        victims_evicted = self._ensure_capacity(len(batch_pages), time)
        self._reserved_frames += len(batch_pages)

        mig = InFlightMigration(
            chunk_id=fault.vpn // self.uvm.pages_per_chunk,
            pages=set(batch_pages),
            start_time=time,
            token=self._next_migration_token,
        )
        self._next_migration_token += 1
        for f in batch_faults:
            mig.attach(f)
        for vpn in batch_pages:
            self._covered[vpn] = mig
        self._in_flight[mig.token] = mig
        self._active_services += 1

        self._h_batch.observe(len(batch_pages))
        transfer = self.pcie.transfer_to_device(len(batch_pages), time=time)
        latency = (
            self.uvm.fault_latency_cycles
            + transfer
            + victims_evicted * self.uvm.eviction_overhead_cycles
        )
        mig.finish_time = time + latency
        self.stats.fault_service_ops += 1
        self.stats.bytes_host_to_device = self.pcie.bytes_to_device
        self.events.schedule(
            mig.finish_time, lambda t, m=mig: self._complete_migration(m, t)
        )
        return True

    def _ensure_capacity(self, frames_needed: int, time: int) -> int:
        """Evict chunks until ``frames_needed`` frames are free.

        Returns the number of victim chunks evicted."""
        if self._free_unreserved >= frames_needed:
            return 0
        if not self._memory_full_seen:
            self._memory_full_seen = True
            if self._trace.enabled:
                self._trace.emit(
                    "memory_full", time, chain_length=len(self.chain),
                    capacity_frames=self.device.capacity,
                )
            self.policy.on_memory_full(time)
        shortfall = frames_needed - self._free_unreserved
        victims = self.policy.select_victims(shortfall, time)
        for entry in victims:
            self._evict_chunk(entry, time)
        if self._free_unreserved < frames_needed:
            raise SimulationError(
                f"policy {self.policy.name} freed "
                f"{self._free_unreserved} frames of the {frames_needed} "
                "needed — select_victims violated its contract"
            )
        return len(victims)

    def _evict_chunk(self, entry: ChunkEntry, time: int) -> None:
        """Unmap every resident page of ``entry`` and retire its metadata."""
        ppc = self.uvm.pages_per_chunk
        base = entry.chunk_id * ppc
        dirty_pages = 0
        evicted_pages = 0
        for i in range(ppc):
            if not entry.is_resident(i):
                continue
            vpn = base + i
            frame, accessed, dirty = self.page_table.unmap(vpn)
            self.device.free(frame)
            if self.translation is not None:
                self.translation.shootdown(vpn)
            if dirty:
                dirty_pages += 1
            evicted_pages += 1
            entry.clear_resident(i)
        # Residency cleared above, so untouch accounting reads the masks as
        # they stood at unmap time via the snapshot below.
        self.chain.remove(entry.chunk_id)
        self.stats.chunks_evicted += 1
        self.stats.pages_evicted += evicted_pages
        self.stats.dirty_pages_written_back += dirty_pages
        self._interval_evictions += 1
        self._m_evictions.inc()
        if dirty_pages:
            # Writebacks ride the duplex link: bytes counted, latency not on
            # the fault-service critical path (see DESIGN.md).
            self.pcie.transfer_to_host(dirty_pages, time=time)
            self.stats.bytes_device_to_host = self.pcie.bytes_to_host
        # Prefetch accuracy accounting.
        touched_prefetched = bin(entry.prefetch_mask & entry.touched_mask).count("1")
        self.stats.prefetched_pages_touched += touched_prefetched

        # Untouch level must reflect what was migrated, so give the policy a
        # snapshot with residency restored.  Every migrated page is either a
        # prefetched page (prefetch_mask) or a demand page, and demand pages
        # are touched on fault replay before any later eviction can run, so
        # touched|prefetch is exactly the pre-eviction residency.
        snapshot = ChunkEntry(entry.chunk_id, entry.insert_interval)
        snapshot.resident_mask = entry.touched_mask | entry.prefetch_mask
        snapshot.touched_mask = entry.touched_mask
        snapshot.prefetch_mask = entry.prefetch_mask
        snapshot.counter = entry.counter
        if self._trace.enabled:
            self._trace.emit(
                "eviction", time, chunk=entry.chunk_id, pages=evicted_pages,
                dirty=dirty_pages, untouch=snapshot.untouch_level(),
                strategy=self.policy.current_strategy,
            )
        self.policy.on_chunk_evicted(snapshot, time)
        self.prefetcher.on_chunk_evicted(
            entry.chunk_id,
            entry.touched_mask,
            snapshot.untouch_level(),
            self.policy.current_strategy,
            time=time,
        )
        self._check_crash_budget()

    def _check_crash_budget(self) -> None:
        factor = self.uvm.crash_eviction_budget_factor
        if factor is None or self._footprint_pages is None:
            return
        footprint_chunks = max(1, self._footprint_pages // self.uvm.pages_per_chunk)
        budget = int(factor * footprint_chunks)
        if self.stats.chunks_evicted > budget:
            raise ThrashingCrash(self.stats.chunks_evicted, budget)

    # ----------------------------------------------------- migration finish

    def _complete_migration(self, mig: InFlightMigration, time: int) -> None:
        ppc = self.uvm.pages_per_chunk
        demand_vpns = {f.vpn for f in mig.faults}
        # Group pages by chunk (pattern prefetch stays within one chunk, but
        # the tree prefetcher can cross chunks).
        by_chunk: Dict[int, List[int]] = {}
        for vpn in sorted(mig.pages):
            by_chunk.setdefault(vpn // ppc, []).append(vpn)

        for chunk_id, vpns in by_chunk.items():
            entry = self.chain.get(chunk_id)
            is_new = entry is None
            if is_new:
                entry = ChunkEntry(chunk_id, self._interval_index)
            for vpn in vpns:
                frame = self.device.allocate()
                self.page_table.map(vpn, frame)
                idx = vpn % ppc
                entry.mark_resident(idx)
                if vpn in demand_vpns:
                    self.stats.demand_pages += 1
                else:
                    entry.prefetch_mask |= 1 << idx
                    self.stats.prefetched_pages += 1
                self._covered.pop(vpn, None)
            # HPE-style counter pollution: migration bumps the counter by the
            # number of pages migrated (Inefficiency 1 of the paper).
            entry.counter = min(16, entry.counter + len(vpns))
            if is_new:
                self.policy.insert_chunk(entry, time)

        migrated = len(mig.pages)
        self._reserved_frames -= migrated
        self.stats.pages_migrated += migrated
        if self._trace.enabled:
            # Chrome duration slice: anchored at the start, dur in cycles
            # (the exporter converts both to microseconds).
            self._trace.emit(
                "migration", mig.start_time, dur=time - mig.start_time,
                demand=len(mig.faults), **mig.trace_args(),
            )
        self._advance_intervals(migrated, time)

        del self._in_flight[mig.token]
        self._active_services -= 1
        for fault in mig.faults:
            fault.on_resolve(time)
        self.stats.chain_length_peak = self.chain.length_peak
        self._maybe_start_service(time)

    def _advance_intervals(self, migrated_pages: int, time: int) -> None:
        self._pages_migrated += migrated_pages
        while self._pages_migrated >= (self._interval_index + 1) * self.uvm.interval_pages:
            record = IntervalRecord(
                index=self._interval_index,
                end_time=time,
                faults=self._interval_faults,
                chunks_evicted=self._interval_evictions,
            )
            self.policy.on_interval_end(record, time)
            self.stats.record_interval(record)
            if self._trace.enabled:
                # The policy filled the strategy/distance/untouch fields in
                # ``record`` above; pattern occupancy comes from the metrics
                # registry (cross-component read, 0 when no pattern buffer).
                self._trace.emit(
                    "interval", time,
                    index=record.index,
                    strategy=record.strategy,
                    forward_distance=record.forward_distance,
                    untouch_level=record.untouch_total,
                    wrong_evictions=record.wrong_evictions,
                    faults=record.faults,
                    chunks_evicted=record.chunks_evicted,
                    pattern_occupancy=self.obs.metrics.value(
                        "pattern.occupancy"
                    ),
                    bytes_h2d=self.pcie.bytes_to_device,
                    bytes_d2h=self.pcie.bytes_to_host,
                )
            self._interval_index += 1
            self._interval_faults = 0
            self._interval_evictions = 0

    # ------------------------------------------------------------- reporting

    def drain_check(self) -> None:
        """Assert no faults are stuck at end of simulation."""
        if self._pending or self._in_flight:
            raise SimulationError(
                f"simulation ended with {len(self._pending)} pending and "
                f"{len(self._in_flight)} in-flight migrations"
            )
