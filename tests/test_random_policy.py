"""Random eviction policy (repro.policies.random_policy)."""

from repro.config import SimConfig
from repro.policies.random_policy import RandomPolicy

from helpers import attach_policy, populate


class TestRandomSelection:
    def test_deterministic_given_seed(self):
        picks = []
        for _ in range(2):
            policy = RandomPolicy()
            attach_policy(policy, seed=7)
            populate(policy, list(range(10)))
            picks.append([v.chunk_id for v in policy.select_victims(16, 0)])
        assert picks[0] == picks[1]

    def test_different_seeds_vary(self):
        outcomes = set()
        for seed in range(8):
            policy = RandomPolicy()
            attach_policy(policy, seed=seed)
            populate(policy, list(range(10)))
            outcomes.add(policy.select_victims(16, 0)[0].chunk_id)
        assert len(outcomes) > 1

    def test_covers_request(self):
        policy = RandomPolicy()
        attach_policy(policy)
        populate(policy, list(range(5)))
        victims = policy.select_victims(40, 0)
        assert sum(v.resident_pages for v in victims) >= 40
        # No duplicates.
        ids = [v.chunk_id for v in victims]
        assert len(ids) == len(set(ids))

    def test_uniformity_over_many_draws(self):
        # Every chunk should be picked at least once over many seeds.
        seen = set()
        for seed in range(64):
            policy = RandomPolicy()
            attach_policy(policy, seed=seed)
            populate(policy, list(range(4)))
            seen.add(policy.select_victims(16, 0)[0].chunk_id)
        assert seen == {0, 1, 2, 3}
