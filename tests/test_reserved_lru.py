"""Reserved LRU (repro.policies.reserved_lru)."""

import pytest

from repro.errors import ConfigError
from repro.policies.reserved_lru import ReservedLRUPolicy

from helpers import attach_policy, populate


class TestReservation:
    def test_top_of_lru_chain_protected(self):
        policy = ReservedLRUPolicy(0.2)
        attach_policy(policy)
        populate(policy, list(range(10)))
        # 20% of 10 = 2 entries protected; first victim is the 3rd LRU.
        victims = policy.select_victims(16, 0)
        assert victims[0].chunk_id == 2

    def test_zero_reservation_is_plain_lru(self):
        policy = ReservedLRUPolicy(0.0)
        attach_policy(policy)
        populate(policy, list(range(5)))
        assert policy.select_victims(16, 0)[0].chunk_id == 0

    def test_falls_back_into_reserve_when_needed(self):
        policy = ReservedLRUPolicy(0.5)
        attach_policy(policy)
        populate(policy, [1, 2])
        # Need both chunks: the reservation must yield.
        victims = policy.select_victims(32, 0)
        assert {v.chunk_id for v in victims} == {1, 2}

    def test_touch_refreshes_recency(self):
        policy = ReservedLRUPolicy(0.0)
        attach_policy(policy)
        entries = populate(policy, [1, 2])
        policy.on_page_touched(entries[0], vpn=16, time=0)
        assert policy.select_victims(16, 0)[0].chunk_id == 2

    def test_name_includes_percentage(self):
        assert ReservedLRUPolicy(0.1).name == "lru-10%"
        assert ReservedLRUPolicy(0.2).name == "lru-20%"

    def test_strategy_reported_as_lru(self):
        assert ReservedLRUPolicy(0.1).current_strategy == "lru"

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ConfigError):
            ReservedLRUPolicy(1.0)
        with pytest.raises(ConfigError):
            ReservedLRUPolicy(-0.1)
