"""CPPE coordination (repro.core.cppe) — the eviction/prefetch handshake."""

import numpy as np

from repro.config import MHPEConfig, PatternBufferConfig, SimConfig, SMConfig
from repro.core.cppe import CPPE
from repro.engine.simulator import Simulator
from repro.policies.mhpe import MHPEPolicy
from repro.prefetch.pattern_aware import PatternAwarePrefetcher
from repro.workloads.base import Workload

from conftest import make_simple_workload


def strided_workload(footprint=512, stride=2, sweeps=4):
    """A cyclic stride-2 workload: the pattern buffer's bread and butter."""
    strided = np.arange(0, footprint, stride, dtype=np.int64)
    return Workload(
        name="strided",
        pattern_type="III",
        footprint_pages=footprint,
        accesses=np.tile(strided, sweeps),
    )


class TestConstruction:
    def test_create_returns_fresh_pair(self):
        a, b = CPPE.create(), CPPE.create()
        assert isinstance(a.policy, MHPEPolicy)
        assert isinstance(a.prefetcher, PatternAwarePrefetcher)
        assert a.policy is not b.policy
        assert a.prefetcher is not b.prefetcher

    def test_scheme_selector(self):
        s1 = CPPE.scheme(1)
        assert s1.prefetcher._cfg_override.deletion_scheme == 1
        s2 = CPPE.scheme(2)
        assert s2.prefetcher._cfg_override.deletion_scheme == 2

    def test_custom_configs_propagate(self):
        pair = CPPE.create(mhpe_config=MHPEConfig(t3=40))
        assert pair.policy._cfg_override.t3 == 40


class TestCoordination:
    def _run(self, pair, workload=None, config=None):
        wl = workload or strided_workload()
        cfg = config or SimConfig(sm=SMConfig(num_sms=4))
        return Simulator(
            wl,
            policy=pair.policy,
            prefetcher=pair.prefetcher,
            oversubscription=0.5,
            config=cfg,
        ).run()

    def test_pattern_buffer_fed_by_evictions(self):
        pair = CPPE.create()
        result = self._run(pair)
        # Stride-2 chunks have untouch 8 and MHPE switches to LRU, so the
        # pattern buffer fills and is consulted.
        assert result.stats.pattern_inserts > 0
        assert result.stats.pattern_hits > 0

    def test_pattern_prefetch_migrates_fewer_pages(self):
        from repro.policies.lru import LRUPolicy
        from repro.prefetch.locality import LocalityPrefetcher

        cfg = SimConfig(sm=SMConfig(num_sms=4))
        wl = strided_workload()
        naive = Simulator(
            wl, policy=LRUPolicy(), prefetcher=LocalityPrefetcher("continue"),
            oversubscription=0.5, config=cfg,
        ).run()
        pair = CPPE.create()
        coordinated = self._run(pair, workload=strided_workload())
        assert coordinated.stats.pages_migrated < naive.stats.pages_migrated
        assert coordinated.stats.bytes_host_to_device < naive.stats.bytes_host_to_device

    def test_lru_only_gating(self):
        # With lru_only and a workload that never switches (no untouch),
        # the pattern buffer must stay empty.
        pair = CPPE.create()
        wl = make_simple_workload()  # full-touch cyclic: untouch ~0
        result = self._run(pair, workload=wl)
        assert result.stats.final_strategy == "mru"
        assert result.stats.pattern_inserts == 0

    def test_lru_only_disabled_records_under_mru(self):
        pair = CPPE.create(
            pattern_config=PatternBufferConfig(lru_only=False, min_untouch_level=1)
        )
        result = self._run(pair)
        assert result.stats.pattern_inserts > 0

    def test_strategy_switch_reported(self):
        pair = CPPE.create()
        result = self._run(pair)
        assert result.stats.final_strategy == "lru"
        assert result.stats.strategy_switch_time is not None
