# expect: REPRO603
# repro-lint: module=repro.harness.experiment
"""Wall clock leaking into results through the harness boundary.

``repro.harness.experiment`` is harness code, so the per-file REPRO102
exempts it — but ``_now`` is transitively reachable from ``_execute``, the
simulation entry point, so its ``time.time()`` flows into results (and
therefore into cached entries).  Only the call-graph pass (REPRO603) can
see this.
"""
import time


def _now():
    return time.time()


def _execute(spec, config):
    return _now()
