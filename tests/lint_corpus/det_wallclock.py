# expect: REPRO102
# repro-lint: module=repro.engine.corpus_clock
"""Wall-clock read inside simulation code."""

import time


def stamp() -> float:
    return time.time()
