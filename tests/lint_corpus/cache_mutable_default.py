# expect: REPRO202
# repro-lint: module=repro.config
"""Mutable default on a hashed config dataclass."""

from dataclasses import dataclass, field
from typing import List


@dataclass(frozen=True)
class CorpusTuning:
    thresholds: List[int] = field(default_factory=list)
