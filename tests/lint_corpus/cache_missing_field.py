# expect: REPRO201
# repro-lint: module=repro.config
"""A fingerprint that enumerates fields explicitly and misses one.

``burst_length`` was added to the config but never reaches the hash, so two
configs differing only in it share a cache key — the exact failure mode the
runtime twin in tests/test_cache_key_integrity.py guards against.
"""

import hashlib
import json
from dataclasses import dataclass


@dataclass(frozen=True)
class CorpusConfig:
    seed: int = 0
    num_sms: int = 28
    burst_length: int = 64  # added later, never hashed


def corpus_config_fingerprint(config: CorpusConfig) -> str:
    payload = {"seed": config.seed, "num_sms": config.num_sms}
    blob = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()
