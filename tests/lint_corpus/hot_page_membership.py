# expect: REPRO107
# repro-lint: module=repro.memsim.corpus_hotpath
"""Per-page membership probes in an index loop: the pattern the array
backend (flat residency/touch masks) exists to eliminate.

Each iteration hashes a boxed page index against a Python set; at
pages-per-chunk x chunks x faults scale these probes dominate simulator
wall time.  The fix is a bit-mask or flat-array lookup.
"""


def count_resident(base_vpn, pages, resident_set):
    hits = 0
    for offset in range(pages):
        if base_vpn + offset in resident_set:  # per-page set probe
            hits += 1
    return hits
