# expect: REPRO602
# repro-lint: module=repro.harness.parallel
"""Worker-reachable mutation of module-level state, no ``global`` needed.

``_pool_entry`` memoises into a module dict.  REPRO301 is blind (no
``global`` statement), but every pool worker builds its own `_SEEN`, so
worker state diverges from serial runs — the call-graph pass (REPRO602)
must flag the subscript write.
"""

_SEEN = {}


def _pool_entry(spec, config):
    _SEEN[spec] = True
    return spec
