# expect: REPRO502
# repro-lint: module=repro.harness.experiment
"""An allowlist entry with no justification defeats the audit (REPRO502).

The elision itself is recorded (so REPRO501 stays silent — the table *is*
the record), but the empty reason string makes the entry unreviewable.
"""
import dataclasses
import hashlib
import json
from dataclasses import dataclass


@dataclass(frozen=True)
class FingerprintElision:
    dataclass_name: str
    field: str
    reason: str


FINGERPRINT_ELISIONS = (
    FingerprintElision("CorpusSpec", "seed", ""),
)


@dataclass(frozen=True)
class CorpusSpec:
    app: str = "STN"
    seed: int = 0


def corpus_spec_fingerprint(spec: CorpusSpec) -> str:
    payload = dataclasses.asdict(spec)
    del payload["seed"]
    blob = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


def _execute(spec: CorpusSpec, config):
    return spec.seed * 2
