# expect: REPRO503
# repro-lint: module=repro.harness.experiment
"""Simulation-reachable read of an attribute the dataclass never declares.

``_execute``'s parameter is annotated ``CorpusSpec``, which has no
``debug_knob`` field or method — a typo that would only explode at runtime
on this path.  REPRO503 catches it statically.
"""
import dataclasses
import hashlib
import json
from dataclasses import dataclass


@dataclass(frozen=True)
class CorpusSpec:
    app: str = "STN"
    seed: int = 0


def corpus_spec_fingerprint(spec: CorpusSpec) -> str:
    blob = json.dumps(dataclasses.asdict(spec), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


def _execute(spec: CorpusSpec, config):
    return spec.debug_knob
