# expect: REPRO101
# repro-lint: module=repro.engine.corpus_random
"""Module-level RNG in simulation code: draws from process-global state."""

import random


def jitter() -> float:
    return random.random()
