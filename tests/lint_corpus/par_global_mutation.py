# expect: REPRO301
# repro-lint: module=repro.engine.corpus_globals
"""Module-global mutation in worker-reachable code."""

_CALLS = 0


def record() -> int:
    global _CALLS
    _CALLS += 1
    return _CALLS
