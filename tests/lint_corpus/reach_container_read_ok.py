# expect:
# repro-lint: module=repro.harness.parallel
"""Reading module-level state from a worker is fine — only writes diverge.

The lookup table is immutable-in-practice; ``_pool_entry`` reads it and
calls a mutator-named method on a *local* container, neither of which is a
shared-state hazard.  REPRO602 must stay silent.
"""

_LIMITS = {"STN": 4, "NW": 2}


def _pool_entry(spec, config):
    batch = []
    batch.append(_LIMITS.get(spec, 1))
    return batch
