# expect: REPRO108
"""Corpus: component registered from inside a function (runtime mutation).

The registries freeze after boot — a ``register`` call that only runs
when some function is invoked is invisible to the deep-lint ``registry:``
seam and to the CLI/shootout component lists (REPRO108).
"""
from repro.registry import register


class LateBreakingPolicy:
    def pick_victims(self, need, state):
        return []


def enable_late_policy():
    register("policy", "late-breaking", LateBreakingPolicy)
