# expect:
# repro-lint: module=repro.harness.experiment
"""The allowlisted twin of taint_unhashed_field_read.py.

The same elided-but-read field, but here FINGERPRINT_ELISIONS records the
elision with a justification, so REPRO501 must stay silent and REPRO502
must accept the entry.
"""
import dataclasses
import hashlib
import json
from dataclasses import dataclass


@dataclass(frozen=True)
class FingerprintElision:
    dataclass_name: str
    field: str
    reason: str


FINGERPRINT_ELISIONS = (
    FingerprintElision(
        "CorpusSpec",
        "seed",
        "corpus fixture: seed is replayed from the workload recording, so "
        "it cannot alter results here",
    ),
)


@dataclass(frozen=True)
class CorpusSpec:
    app: str = "STN"
    seed: int = 0


def corpus_spec_fingerprint(spec: CorpusSpec) -> str:
    payload = dataclasses.asdict(spec)
    del payload["seed"]
    blob = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


def _execute(spec: CorpusSpec, config):
    return spec.seed * 2
