# expect: REPRO103
# repro-lint: module=repro.policies.corpus_env
"""Config knob read from the environment, bypassing SimConfig."""

import os


def threshold() -> int:
    return int(os.environ.get("REPRO_T1", "32"))
