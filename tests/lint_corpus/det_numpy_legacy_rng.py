# expect: REPRO101
# repro-lint: module=repro.workloads.corpus_nprandom
"""Legacy numpy global-state RNG instead of a seeded Generator."""

import numpy as np


def noise(n: int):
    return np.random.rand(n)
