# expect: REPRO106
# repro-lint: module=repro.memsim.corpus_rng
"""Direct RNG construction in memsim: forks a stream SimConfig can't see.

``random.Random(seed)`` is fine elsewhere in simulation code (REPRO101
allows seeded ctors), but inside ``repro.memsim`` the one blessed stream
is ``config.make_rng()`` — a second locally derived seed silently splits
the randomness the result cache assumed was single-sourced.
"""

import random


def make_stream(seed: int) -> random.Random:
    return random.Random(seed ^ 0x5EED)
