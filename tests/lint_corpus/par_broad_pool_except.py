# expect: REPRO304
# repro-lint: module=repro.harness.parallel
"""Over-broad exception tuple around pool dispatch: a simulation-level
RuntimeError travelling back through a future is misclassified as pool
breakage and the whole batch silently re-runs serially."""

from concurrent.futures import ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool

POOL_ERRORS = (OSError, BrokenProcessPool, RuntimeError)


def work(spec):
    return spec


def fan_out(specs):
    results = []
    try:
        with ProcessPoolExecutor() as pool:
            futures = [pool.submit(work, spec) for spec in specs]
            done, _ = wait(futures)
            results = [f.result() for f in done]
    except POOL_ERRORS:
        return None  # "pool broke" — but it may have been a simulation bug
    return results
