# expect:
# repro-lint: module=repro.harness.experiment
"""Simulation entry point that builds its prefetcher through the registry.

``_execute`` never names the plugin class — the literal-kind ``build``
call is the seam.  Deep mode fans ``registry:prefetcher`` out to every
import-time registration, which is how the plugin's builder (and its
config read) enters the simulation closure.  This file is clean.
"""
from repro.config import CorpusPluginConfig
from repro.registry import build


def _execute(spec, config: CorpusPluginConfig):
    prefetcher = build("prefetcher", "corpus-markov")
    return prefetcher
