# expect:
# repro-lint: module=cppe_plugins.markov
"""Out-of-tree plugin whose builder reads an unfingerprinted knob.

A well-formed plugin: module-level registration, literal kind/name, so
REPRO108 stays quiet.  But its builder reads ``config.plugin_knob``,
which corpus_cache.py elides from the cache hash — two runs differing
only in the knob would share a cache entry.  The finding (REPRO501)
anchors at the elision, not here: the plugin is allowed to read any
config field; the hash has to keep up.
"""
from repro.config import CorpusPluginConfig
from repro.registry import register


class CorpusMarkovPrefetcher:
    def __init__(self, config: CorpusPluginConfig):
        self.depth = config.plugin_knob

    def on_fault(self, chunk, state):
        return []


register("prefetcher", "corpus-markov", CorpusMarkovPrefetcher)
