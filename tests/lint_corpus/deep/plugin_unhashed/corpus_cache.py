# expect: REPRO501
# repro-lint: module=repro.harness.cache
"""Fingerprint that elides the knob a plugin's builder actually reads.

``corpus_config_fingerprint`` hashes the whole config via ``asdict`` and
then deletes ``plugin_knob`` — defensible when nothing read it, wrong the
moment the plugin registered a builder that does.  Deep mode must walk
the registry seam (``_execute`` -> ``build("prefetcher", ...)`` -> every
registered builder, including the plugin's) and connect the read back to
this elision (REPRO501).  No FINGERPRINT_ELISIONS entry justifies it.
"""
import dataclasses
import hashlib
import json

from repro.config import CorpusPluginConfig


def corpus_config_fingerprint(config: CorpusPluginConfig) -> str:
    payload = dataclasses.asdict(config)
    del payload["plugin_knob"]
    blob = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()
