# expect:
# repro-lint: module=repro.config
"""Hashed config dataclass that grew a plugin-facing knob.

``plugin_knob`` only matters to an out-of-tree prefetcher plugin
(corpus_plugin.py), which is exactly why it is easy to forget in the
fingerprint — nothing in-tree reads it.  This file itself is clean; the
finding anchors at the elision site in corpus_cache.py.
"""
from dataclasses import dataclass


@dataclass(frozen=True)
class CorpusPluginConfig:
    seed: int = 0
    num_sms: int = 28
    plugin_knob: int = 4  # read only by the plugin's builder
