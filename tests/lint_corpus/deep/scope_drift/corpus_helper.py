# expect: REPRO604
# repro-lint: module=repro.analysis.corpus_helper
"""Pure helper that drifted into the worker closure.

No globals, no containers, no nondeterminism — but the module is outside
PARALLEL_SCOPE and is now reachable from ``_pool_entry``, so the
boundary declaration in devtools/boundary.py no longer matches reality.
REPRO604 asks the author to either extend PARALLEL_SCOPE deliberately or
cut the call edge.
"""


def scale(spec):
    return spec * 2
