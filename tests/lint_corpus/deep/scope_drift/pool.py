# expect:
# repro-lint: module=repro.harness.parallel
"""Worker entry point calling a pure helper outside PARALLEL_SCOPE.

The helper is harmless (no shared state), so the only deep finding is the
scope drift itself, anchored in the callee's module.
"""
from repro.analysis.corpus_helper import scale


def _pool_entry(spec, config):
    return scale(spec)
