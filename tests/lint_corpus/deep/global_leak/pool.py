# expect:
# repro-lint: module=repro.harness.parallel
"""Worker entry point that innocently calls into an analysis helper.

The hazard lives in the *callee's* module (see corpus_metrics.py) — this
file itself is clean, so its expect header is empty.
"""
from repro.analysis.corpus_metrics import bump


def _pool_entry(spec, config):
    bump()
    return spec
