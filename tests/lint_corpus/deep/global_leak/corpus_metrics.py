# expect: REPRO601, REPRO604
# repro-lint: module=repro.analysis.corpus_metrics
"""Analysis module dragged into the worker closure with a ``global`` write.

``repro.analysis`` is outside PARALLEL_SCOPE, so the per-file REPRO301
never looks here — but ``_pool_entry`` (global_leak/pool.py) calls
``bump``, so every pool worker mutates its own copy of ``_CALLS``.  Deep
mode must report both the scope drift (REPRO604: a module outside
PARALLEL_SCOPE became worker-reachable) and the concrete hazard
(REPRO601: the ``global`` write itself).
"""

_CALLS = 0


def bump():
    global _CALLS
    _CALLS += 1
    return _CALLS
