# expect: REPRO102
# repro-lint: module=repro.memsim.corpus_datetime
"""datetime.now() via a from-import, inside simulation code."""

from datetime import datetime


def stamp() -> str:
    return datetime.now().isoformat()
