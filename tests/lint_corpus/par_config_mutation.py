# expect: REPRO303
# repro-lint: module=repro.engine.corpus_cfgmut
"""Mutating a shared config object instead of deriving a new one."""


def tune(config, factor: float) -> None:
    config.write_fraction = factor
