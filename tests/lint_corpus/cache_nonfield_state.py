# expect: REPRO203
# repro-lint: module=repro.config
"""State on a hashed dataclass that dataclasses.asdict() cannot see."""

from dataclasses import dataclass


@dataclass(frozen=True)
class CorpusKnobs:
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "derived_budget", self.seed * 2)
