# expect: REPRO105
# repro-lint: module=repro.memsim.corpus_idkey
"""id()-derived bookkeeping key: unique per process, different every run."""


def track(table, mig) -> None:
    table[id(mig)] = mig
