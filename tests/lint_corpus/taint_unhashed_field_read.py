# expect: REPRO501
# repro-lint: module=repro.harness.experiment
"""A spec field is read on the simulation path but elided from the hash.

``corpus_spec_fingerprint`` hashes the whole spec via ``asdict`` and then
deletes ``seed`` from the payload — while ``_execute`` (a simulation entry
point) reads ``spec.seed``.  Two runs differing only in seed would share a
cache entry.  Deep-mode taint tracking (REPRO501) must connect the read to
the elision; no FINGERPRINT_ELISIONS entry justifies it.
"""
import dataclasses
import hashlib
import json
from dataclasses import dataclass


@dataclass(frozen=True)
class CorpusSpec:
    app: str = "STN"
    seed: int = 0


def corpus_spec_fingerprint(spec: CorpusSpec) -> str:
    payload = dataclasses.asdict(spec)
    del payload["seed"]
    blob = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


def _execute(spec: CorpusSpec, config):
    return spec.seed * 2
