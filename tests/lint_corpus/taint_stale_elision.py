# expect: REPRO502
# repro-lint: module=repro.harness.experiment
"""A stale allowlist entry: the fingerprint no longer elides the field.

The table claims ``seed`` escapes the hash, but ``corpus_spec_fingerprint``
hashes the whole object — the entry documents a hash that is not the one
shipping (REPRO502).
"""
import dataclasses
import hashlib
import json
from dataclasses import dataclass


@dataclass(frozen=True)
class FingerprintElision:
    dataclass_name: str
    field: str
    reason: str


FINGERPRINT_ELISIONS = (
    FingerprintElision(
        "CorpusSpec",
        "seed",
        "stale claim: this elision was removed from the fingerprint long ago",
    ),
)


@dataclass(frozen=True)
class CorpusSpec:
    app: str = "STN"
    seed: int = 0


def corpus_spec_fingerprint(spec: CorpusSpec) -> str:
    payload = dataclasses.asdict(spec)
    blob = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


def _execute(spec: CorpusSpec, config):
    return spec.seed * 2
