# expect: REPRO302
# repro-lint: module=repro.harness.parallel
"""Lambda submitted as a pool worker: unpicklable, parallel-path-only crash."""

from concurrent.futures import ProcessPoolExecutor


def fan_out(specs):
    with ProcessPoolExecutor() as pool:
        return [pool.submit(lambda s: s, spec) for spec in specs]
