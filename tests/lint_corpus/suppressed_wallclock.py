# expect:
# repro-lint: module=repro.engine.corpus_suppressed
"""A violation silenced by a suppression comment — must lint clean."""

import time


def stamp() -> float:
    # repro-lint: disable=REPRO102 — corpus demo of a justified suppression
    return time.time()
