# expect: REPRO108
"""Corpus: computed component name at a registry call site.

The loop runs at import time, so this is not a runtime mutation — but
the f-string name cannot be resolved statically, so the CLI choice
lists and the deep-lint seam cannot enumerate what got registered
(REPRO108).
"""
from repro.registry import register


class SweepPolicy:
    def pick_victims(self, need, state):
        return []


for width in (1, 2, 4):
    register("policy", f"sweep-{width}", SweepPolicy)
