# expect: REPRO104
# repro-lint: module=repro.prefetch.corpus_set
"""Iteration order of a set reaching simulation flow."""


def drain(pending):
    for vpn in set(pending):
        yield vpn
