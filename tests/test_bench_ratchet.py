"""Unit tests for the CI benchmark ratchet (``repro.harness.bench``).

The ratchet compares speedup *ratios* (array vs object, measured in the
same process) rather than absolute wall-clock, so a committed baseline
stays meaningful across machines.  These tests drive
:func:`compare_to_baseline` with synthetic documents — no timing — plus
one real (tiny) :func:`run_bench` smoke.
"""

from __future__ import annotations

import json

import numpy as np

from repro.harness.bench import (
    BENCH_SCHEMA_VERSION,
    bench_config,
    compare_to_baseline,
    fault_heavy_workload,
    hit_heavy_workload,
    load_baseline,
    run_bench,
)
from repro.harness.cache import config_fingerprint


def _doc(hit_speedup=2.5, fault_speedup=1.3, identical=True, fingerprint=None):
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "quick": True,
        "rounds": 1,
        "config_fingerprint": fingerprint or config_fingerprint(bench_config()),
        "headline_case": "hit_heavy",
        "cases": {
            "hit_heavy": {
                "unit": "access",
                "accesses": 100,
                "far_faults": 1,
                "object": {"best_s": 1.0, "us_per_access": 10.0},
                "array": {"best_s": 1.0 / hit_speedup,
                          "us_per_access": 10.0 / hit_speedup},
                "speedup": hit_speedup,
                "identical": identical,
            },
            "fault_heavy": {
                "unit": "fault",
                "accesses": 100,
                "far_faults": 100,
                "object": {"best_s": 1.0, "us_per_fault": 10.0},
                "array": {"best_s": 1.0 / fault_speedup,
                          "us_per_fault": 10.0 / fault_speedup},
                "speedup": fault_speedup,
                "identical": True,
            },
        },
    }


class TestRatchetDecisions:
    def test_missing_baseline_passes_with_warning(self):
        report = compare_to_baseline(_doc(), None)
        assert report.ok
        assert any("no baseline" in w for w in report.warnings)

    def test_equal_speedup_passes(self):
        report = compare_to_baseline(_doc(), _doc())
        assert report.ok, report.render()

    def test_faster_than_baseline_passes(self):
        report = compare_to_baseline(_doc(hit_speedup=3.5), _doc(hit_speedup=2.5))
        assert report.ok

    def test_regression_beyond_tolerance_fails(self):
        # Baseline 2.5x, current 2.01x, tolerance 15% -> floor 2.125x: FAIL.
        report = compare_to_baseline(
            _doc(hit_speedup=2.01), _doc(hit_speedup=2.5), min_speedup=1.0
        )
        assert not report.ok
        failing = [c for c in report.checks if not c.passed]
        assert any("speedup_ratchet" in c.name for c in failing)

    def test_regression_within_tolerance_passes(self):
        # Baseline 2.5x, current 2.2x, floor 2.125x: inside the band.
        report = compare_to_baseline(
            _doc(hit_speedup=2.2), _doc(hit_speedup=2.5), min_speedup=1.0
        )
        assert report.ok, report.render()

    def test_headline_floor_enforced_even_without_baseline(self):
        report = compare_to_baseline(_doc(hit_speedup=1.2), None)
        assert not report.ok
        failing = [c for c in report.checks if not c.passed]
        assert any("min_speedup" in c.name for c in failing)

    def test_divergent_backends_hard_fail(self):
        report = compare_to_baseline(_doc(identical=False), _doc())
        assert not report.ok
        failing = [c for c in report.checks if not c.passed]
        assert any("identical" in c.name for c in failing)

    def test_foreign_config_baseline_ignored(self):
        baseline = _doc(hit_speedup=99.0, fingerprint="f" * 64)
        report = compare_to_baseline(_doc(), baseline)
        assert report.ok
        assert any("different bench config" in w for w in report.warnings)
        assert not any("speedup_ratchet" in c.name for c in report.checks)

    def test_schema_mismatch_ignored(self):
        baseline = _doc()
        baseline["schema"] = BENCH_SCHEMA_VERSION + 1
        report = compare_to_baseline(_doc(), baseline)
        assert report.ok
        assert any("schema" in w for w in report.warnings)

    def test_case_missing_from_baseline_warns(self):
        baseline = _doc()
        del baseline["cases"]["fault_heavy"]
        report = compare_to_baseline(_doc(), baseline)
        assert report.ok
        assert any("fault_heavy" in w for w in report.warnings)

    def test_render_names_every_check(self):
        report = compare_to_baseline(_doc(hit_speedup=1.0), _doc())
        text = report.render()
        assert "REGRESSION" in text
        assert "min_speedup" in text


class TestBaselineIO:
    def test_load_missing_returns_none(self, tmp_path):
        assert load_baseline(str(tmp_path / "nope.json")) is None

    def test_load_garbage_returns_none(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert load_baseline(str(path)) is None
        path.write_text("[1, 2, 3]")
        assert load_baseline(str(path)) is None

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "b.json"
        doc = _doc()
        path.write_text(json.dumps(doc))
        assert load_baseline(str(path)) == doc


class TestBenchWorkloads:
    def test_fault_workload_writes_seeded_from_config(self):
        # The write flags come from SimConfig.make_rng(): same config, same
        # stream; a different seed, a different stream.
        a = fault_heavy_workload(sweeps=2, config=bench_config())
        b = fault_heavy_workload(sweeps=2, config=bench_config())
        assert np.array_equal(a.writes, b.writes)
        other = fault_heavy_workload(
            sweeps=2, config=bench_config().with_(seed=99)
        )
        assert not np.array_equal(a.writes, other.writes)

    def test_hit_workload_shape(self):
        wl = hit_heavy_workload(sweeps=3)
        assert wl.footprint_pages == 512
        assert wl.accesses.size == 3 * 512


class TestRunBenchSmoke:
    def test_run_bench_produces_identical_backends(self):
        doc = run_bench(quick=True, rounds=0)
        assert set(doc["cases"]) == {"hit_heavy", "fault_heavy"}
        for case in doc["cases"].values():
            assert case["identical"], "array backend diverged from oracle"
            assert case["object"]["best_s"] > 0
            assert case["array"]["best_s"] > 0
        json.dumps(doc)  # must be serialisable as-is
