"""Statistics container (repro.engine.stats)."""

from repro.engine.stats import IntervalRecord, SimStats


class TestDerivedMetrics:
    def test_tlb_hit_rates(self):
        s = SimStats()
        s.l1_tlb_hits, s.l1_tlb_misses = 90, 10
        s.l2_tlb_hits, s.l2_tlb_misses = 5, 5
        assert s.l1_tlb_hit_rate == 0.9
        assert s.l2_tlb_hit_rate == 0.5

    def test_hit_rates_empty(self):
        s = SimStats()
        assert s.l1_tlb_hit_rate == 0.0
        assert s.l2_tlb_hit_rate == 0.0

    def test_prefetch_accuracy(self):
        s = SimStats()
        s.prefetched_pages = 100
        s.prefetched_pages_touched = 60
        assert s.prefetch_accuracy == 0.6

    def test_prefetch_accuracy_no_prefetch(self):
        assert SimStats().prefetch_accuracy == 0.0


class TestIntervals:
    def _stats_with_untouch(self, levels):
        s = SimStats()
        for i, u in enumerate(levels):
            s.record_interval(IntervalRecord(index=i, untouch_total=u))
        return s

    def test_max_untouch_first_four(self):
        s = self._stats_with_untouch([3, 50, 7, 2, 99])
        # The fifth interval (99) is outside the Table III window.
        assert s.max_untouch_first_n_intervals(4) == 50

    def test_total_untouch_first_four(self):
        s = self._stats_with_untouch([3, 50, 7, 2, 99])
        assert s.total_untouch_first_n_intervals(4) == 62

    def test_empty_intervals(self):
        s = SimStats()
        assert s.max_untouch_first_n_intervals() == 0
        assert s.total_untouch_first_n_intervals() == 0
        assert s.avg_untouch_per_interval == 0.0

    def test_avg_untouch(self):
        s = self._stats_with_untouch([10, 20, 30])
        assert s.avg_untouch_per_interval == 20.0


class TestSummary:
    def test_summary_contains_headline_keys(self):
        s = SimStats()
        s.total_cycles = 123
        s.far_faults = 7
        summary = s.summary()
        assert summary["total_cycles"] == 123
        assert summary["far_faults"] == 7
        for key in ("pages_migrated", "chunks_evicted", "final_strategy"):
            assert key in summary
