"""The `repro lint` AST checker (repro.devtools)."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.devtools import (
    HARNESS_PACKAGES,
    PARALLEL_SCOPE,
    SIMULATION_PACKAGES,
    all_rules,
    is_parallel_scope,
    is_simulation_module,
    run_lint,
)
from repro.devtools.checker import PARSE_ERROR_RULE, module_name_for
from repro.devtools.ratchet import MYPY_ALLOWLIST_BASELINE, STRICT_REQUIRED

REPO = Path(__file__).resolve().parent.parent
CORPUS = REPO / "tests" / "lint_corpus"


def expected_rules(path: Path) -> set:
    """Parse the `# expect: RULE[,RULE]` header of a corpus file."""
    for line in path.read_text().splitlines()[:3]:
        if line.startswith("# expect:"):
            spec = line.split(":", 1)[1].strip()
            return {r.strip() for r in spec.split(",") if r.strip()}
    raise AssertionError(f"{path} has no '# expect:' header")


class TestRepoIsClean:
    def test_src_lints_clean(self):
        report = run_lint([REPO / "src"])
        assert report.files_checked > 50
        assert [f.render() for f in report.findings] == []


class TestCorpus:
    """Each known-bad snippet triggers exactly its intended rule.

    The corpus is linted in deep mode so the whole-program families
    (REPRO5xx/6xx) are exercised alongside the per-file ones; deep mode
    must not change what any per-file snippet triggers.
    """

    @pytest.mark.parametrize(
        "path", sorted(CORPUS.glob("*.py")), ids=lambda p: p.stem
    )
    def test_snippet_triggers_exactly_expected_rules(self, path):
        report = run_lint([path], deep=True)
        triggered = {f.rule for f in report.findings}
        assert triggered == expected_rules(path)

    @pytest.mark.parametrize(
        "scenario",
        sorted(p for p in (CORPUS / "deep").iterdir() if p.is_dir()),
        ids=lambda p: p.name,
    )
    def test_deep_scenario_triggers_union_of_expected_rules(self, scenario):
        # Multi-file scenarios: the hazard needs a call edge crossing a
        # module boundary, so the expected set is the union over files.
        expected = set()
        for path in sorted(scenario.glob("*.py")):
            expected |= expected_rules(path)
        report = run_lint([scenario], deep=True)
        triggered = {f.rule for f in report.findings}
        assert triggered == expected

    def test_deep_findings_anchor_in_the_culprit_file(self):
        # REPRO601/604 must point at the module that drifted into the
        # worker closure, not at the (clean) worker entry file.
        report = run_lint([CORPUS / "deep" / "global_leak"], deep=True)
        assert report.findings
        for finding in report.findings:
            assert Path(finding.path).name == "corpus_metrics.py"

    def test_corpus_covers_every_rule_family(self):
        covered = set()
        for path in CORPUS.glob("*.py"):
            covered.update(expected_rules(path))
        for path in (CORPUS / "deep").glob("*/*.py"):
            covered.update(expected_rules(path))
        assert {r[: len("REPRO1")] for r in covered} >= {
            "REPRO1", "REPRO2", "REPRO3", "REPRO5", "REPRO6"
        }


class TestBoundary:
    """The harness-vs-simulation boundary is explicit, not accidental."""

    def test_packages_disjoint(self):
        assert not SIMULATION_PACKAGES & HARNESS_PACKAGES

    def test_cli_and_docgen_are_harness_side(self):
        # The audited wall-clock sites: timing display only.
        assert not is_simulation_module("repro.cli")
        assert not is_simulation_module("repro.harness.docgen")
        assert is_simulation_module("repro.engine.simulator")

    def test_worker_reachable_scope(self):
        assert is_parallel_scope("repro.harness.experiment")
        assert is_parallel_scope("repro.engine.sm")
        assert not is_parallel_scope("repro.harness.docgen")
        assert PARALLEL_SCOPE >= SIMULATION_PACKAGES

    def test_same_snippet_flagged_only_in_simulation_code(self, tmp_path):
        body = "import time\n\ndef f():\n    return time.time()\n"
        sim = tmp_path / "sim.py"
        sim.write_text("# repro-lint: module=repro.engine.x\n" + body)
        harness = tmp_path / "harness.py"
        harness.write_text("# repro-lint: module=repro.cli\n" + body)
        assert {f.rule for f in run_lint([sim]).findings} == {"REPRO102"}
        assert run_lint([harness]).findings == []


class TestSuppressions:
    def test_same_line_suppression(self, tmp_path):
        path = tmp_path / "s.py"
        path.write_text(
            "# repro-lint: module=repro.engine.x\n"
            "import time\n"
            "t = time.time()  # repro-lint: disable=REPRO102\n"
        )
        assert run_lint([path]).findings == []

    def test_preceding_line_suppression(self, tmp_path):
        path = tmp_path / "s.py"
        path.write_text(
            "# repro-lint: module=repro.engine.x\n"
            "import time\n"
            "# repro-lint: disable=REPRO102 — justified elsewhere\n"
            "t = time.time()\n"
        )
        assert run_lint([path]).findings == []

    def test_disable_all(self, tmp_path):
        path = tmp_path / "s.py"
        path.write_text(
            "# repro-lint: module=repro.engine.x\n"
            "import time, random\n"
            "t = time.time() + random.random()  # repro-lint: disable=all\n"
        )
        assert run_lint([path]).findings == []

    def test_wrong_rule_id_does_not_suppress(self, tmp_path):
        path = tmp_path / "s.py"
        path.write_text(
            "# repro-lint: module=repro.engine.x\n"
            "import time\n"
            "t = time.time()  # repro-lint: disable=REPRO101\n"
        )
        assert {f.rule for f in run_lint([path]).findings} == {"REPRO102"}


class TestCacheIntegrityRule:
    """REPRO201 statically catches a field escaping the cache key."""

    def test_injected_field_without_hash_update_is_flagged(self, tmp_path):
        path = tmp_path / "cfg.py"
        path.write_text(
            "# repro-lint: module=repro.config\n"
            "import hashlib, json\n"
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class Cfg:\n"
            "    seed: int = 0\n"
            "    new_knob: int = 1\n"
            "def cfg_fingerprint(cfg: Cfg) -> str:\n"
            "    blob = json.dumps({'seed': cfg.seed})\n"
            "    return hashlib.sha256(blob.encode()).hexdigest()\n"
        )
        findings = run_lint([path]).findings
        assert [f.rule for f in findings] == ["REPRO201"]
        assert "new_knob" in findings[0].message

    def test_asdict_hashing_covers_all_fields(self, tmp_path):
        path = tmp_path / "cfg.py"
        path.write_text(
            "# repro-lint: module=repro.config\n"
            "import dataclasses, hashlib, json\n"
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class Cfg:\n"
            "    seed: int = 0\n"
            "    new_knob: int = 1\n"
            "def cfg_fingerprint(cfg: Cfg) -> str:\n"
            "    blob = json.dumps(dataclasses.asdict(cfg), sort_keys=True)\n"
            "    return hashlib.sha256(blob.encode()).hexdigest()\n"
        )
        assert run_lint([path]).findings == []


class TestDeterminismRules:
    def test_seeded_random_instance_allowed(self, tmp_path):
        path = tmp_path / "ok.py"
        path.write_text(
            "# repro-lint: module=repro.policies.x\n"
            "import random\n"
            "rng = random.Random(42)\n"
            "v = rng.random()\n"
        )
        assert run_lint([path]).findings == []

    def test_seeded_numpy_generator_allowed(self, tmp_path):
        path = tmp_path / "ok.py"
        path.write_text(
            "# repro-lint: module=repro.workloads.x\n"
            "import numpy as np\n"
            "rng = np.random.default_rng(7)\n"
        )
        assert run_lint([path]).findings == []

    def test_sorted_set_iteration_allowed(self, tmp_path):
        path = tmp_path / "ok.py"
        path.write_text(
            "# repro-lint: module=repro.engine.x\n"
            "def f(pending):\n"
            "    for vpn in sorted(set(pending)):\n"
            "        yield vpn\n"
        )
        assert run_lint([path]).findings == []


class TestPoolExceptionRule:
    """REPRO304: over-broad exception handling around pool dispatch."""

    HEADER = (
        "# repro-lint: module=repro.harness.parallel\n"
        "from concurrent.futures import ProcessPoolExecutor, wait\n"
        "from concurrent.futures.process import BrokenProcessPool\n"
        "class PoolError(Exception): pass\n"
    )

    def _lint(self, tmp_path, body):
        path = tmp_path / "p.py"
        path.write_text(self.HEADER + body)
        return run_lint([path]).findings

    def test_bare_except_around_dispatch_flagged(self, tmp_path):
        findings = self._lint(
            tmp_path,
            "def f(pool, work, specs):\n"
            "    try:\n"
            "        return [pool.submit(work, s) for s in specs]\n"
            "    except:\n"
            "        return None\n",
        )
        assert [f.rule for f in findings] == ["REPRO304"]
        assert "bare" in findings[0].message

    def test_runtime_error_handler_flagged(self, tmp_path):
        findings = self._lint(
            tmp_path,
            "def f(pool, work, specs):\n"
            "    try:\n"
            "        return [pool.submit(work, s) for s in specs]\n"
            "    except RuntimeError:\n"
            "        return None\n",
        )
        assert [f.rule for f in findings] == ["REPRO304"]

    def test_overbroad_tuple_literal_flagged(self, tmp_path):
        findings = self._lint(
            tmp_path,
            "def f(pool, futures):\n"
            "    try:\n"
            "        done, _ = wait(futures)\n"
            "    except (BrokenProcessPool, OSError):\n"
            "        return None\n",
        )
        assert [f.rule for f in findings] == ["REPRO304"]
        assert "OSError" in findings[0].message

    def test_module_level_tuple_binding_resolved(self, tmp_path):
        # The historical _POOL_ERRORS shape: the broad names hide behind a
        # module constant.
        findings = self._lint(
            tmp_path,
            "POOL_ERRORS = (OSError, BrokenProcessPool, RuntimeError)\n"
            "def f(pool, work, specs):\n"
            "    try:\n"
            "        return [pool.submit(work, s) for s in specs]\n"
            "    except POOL_ERRORS:\n"
            "        return None\n",
        )
        assert {f.rule for f in findings} == {"REPRO304"}
        assert len(findings) == 2  # OSError and RuntimeError, not BrokenProcessPool

    def test_narrow_handlers_allowed(self, tmp_path):
        findings = self._lint(
            tmp_path,
            "def f(pool, work, specs):\n"
            "    try:\n"
            "        return [pool.submit(work, s) for s in specs]\n"
            "    except (BrokenProcessPool, PoolError):\n"
            "        return None\n",
        )
        assert findings == []

    def test_broad_handler_without_dispatch_allowed(self, tmp_path):
        # Pool *creation* (or anything else) may catch broadly; only
        # dispatch/collection handlers are in scope.
        findings = self._lint(
            tmp_path,
            "def make_pool():\n"
            "    try:\n"
            "        return ProcessPoolExecutor()\n"
            "    except OSError:\n"
            "        return None\n",
        )
        assert findings == []

    def test_out_of_scope_module_not_flagged(self, tmp_path):
        path = tmp_path / "p.py"
        path.write_text(
            "# repro-lint: module=repro.harness.docgen\n"
            "def f(pool, work, specs):\n"
            "    try:\n"
            "        return [pool.submit(work, s) for s in specs]\n"
            "    except Exception:\n"
            "        return None\n"
        )
        assert run_lint([path]).findings == []


class TestRatchetRule:
    def test_real_pyproject_allowlist_matches_baseline(self):
        # The pyproject allowlist and the frozen baseline move together;
        # REPRO401 already ran as part of TestRepoIsClean, this pins the
        # strict graduates explicitly.
        assert "repro.config" in STRICT_REQUIRED
        assert "repro.harness.cache" in STRICT_REQUIRED
        # Graduated after their interfaces stabilised: the fault taxonomy
        # and the findings/report layer.
        assert "repro.harness.faults" in STRICT_REQUIRED
        assert "repro.devtools.findings" in STRICT_REQUIRED
        assert not STRICT_REQUIRED & MYPY_ALLOWLIST_BASELINE

    def test_grown_allowlist_is_flagged(self, tmp_path):
        pytest.importorskip("tomllib")  # ratchet rule is a no-op on py<3.11
        (tmp_path / "pyproject.toml").write_text(
            "[tool.mypy]\nstrict = true\n"
            "[[tool.mypy.overrides]]\n"
            'module = ["repro.shiny_new_thing"]\n'
            "ignore_errors = true\n"
        )
        (tmp_path / "mod.py").write_text("x = 1\n")
        findings = run_lint([tmp_path / "mod.py"]).findings
        assert [f.rule for f in findings] == ["REPRO401"]
        assert "repro.shiny_new_thing" in findings[0].message

    def test_reintroducing_strict_module_is_flagged(self, tmp_path):
        pytest.importorskip("tomllib")  # ratchet rule is a no-op on py<3.11
        (tmp_path / "pyproject.toml").write_text(
            "[[tool.mypy.overrides]]\n"
            'module = ["repro.harness.cache"]\n'
            "ignore_errors = true\n"
        )
        (tmp_path / "mod.py").write_text("x = 1\n")
        findings = run_lint([tmp_path / "mod.py"]).findings
        assert [f.rule for f in findings] == ["REPRO401"]


class TestCheckerPlumbing:
    def test_module_name_resolution(self):
        assert module_name_for(Path("src/repro/engine/sm.py")) == "repro.engine.sm"
        assert module_name_for(Path("src/repro/__init__.py")) == "repro"
        assert (
            module_name_for(Path("/root/repo/src/repro/harness/cache.py"))
            == "repro.harness.cache"
        )

    def test_syntax_error_reported_not_raised(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        findings = run_lint([bad]).findings
        assert [f.rule for f in findings] == [PARSE_ERROR_RULE]

    def test_rule_catalogue_metadata_complete(self):
        ids = set()
        for cls in all_rules():
            assert cls.rule_id and cls.title and cls.rationale and cls.fix_hint
            assert cls.rule_id.startswith("REPRO")
            ids.add(cls.rule_id)
        assert len(ids) >= 10

    def test_findings_sorted_and_located(self, tmp_path):
        path = tmp_path / "two.py"
        path.write_text(
            "# repro-lint: module=repro.engine.x\n"
            "import time\n"
            "a = time.time()\n"
            "b = time.time()\n"
        )
        findings = run_lint([path]).findings
        assert [f.line for f in findings] == [3, 4]
        assert all(f.column >= 1 for f in findings)
