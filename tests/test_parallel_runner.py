"""Differential suite: the parallel experiment engine must be
indistinguishable from serial execution (repro.harness.parallel).

Simulations are seeded and deterministic, so for any batch of specs the
``ParallelRunner`` (``jobs >= 2``, ProcessPoolExecutor) must produce
``SimulationResult`` payloads field-for-field identical to serial
``run_matrix`` output — including crash outcomes — and a warm disk cache
must make repeated figure regenerations perform zero new simulations.
"""

import dataclasses

import pytest

from repro.config import SimConfig, SMConfig
from repro.harness import cache as cache_mod
from repro.harness import figures
from repro.harness.experiment import (
    RunSpec,
    clear_cache,
    execution_count,
    run_matrix,
)
from repro.harness.parallel import ParallelRunner, default_jobs

FAST = SimConfig(sm=SMConfig(num_sms=4))

#: 3 apps x 3 setups x 2 oversubscription rates x 2 seeds (the acceptance
#: matrix), plus crash-model specs so crashed outcomes are covered too.
APPS = ("STN", "NW", "HIS")
SETUPS = ("baseline", "cppe", "random")
RATES = (0.75, 0.5)
SEEDS = (None, 3)

MATRIX = [
    RunSpec(app, setup, rate, scale=0.25, seed=seed)
    for app in APPS
    for setup in SETUPS
    for rate in RATES
    for seed in SEEDS
]
CRASH_SPECS = [
    RunSpec(app, "baseline", 0.5, scale=0.25, crash_budget_factor=0.25)
    for app in APPS
]


def result_payload(result) -> dict:
    """Every field of a SimulationResult (stats included), as plain data."""
    return dataclasses.asdict(result)


def run_serial(specs, config=FAST):
    clear_cache(disk=False)
    return run_matrix(specs, config=config, cache=None)


def run_parallel(specs, config=FAST, jobs=2, **kwargs):
    clear_cache(disk=False)  # force actual (re-)execution in workers
    runner = ParallelRunner(jobs=jobs, cache=None, **kwargs)
    results = runner.run(specs, config=config)
    return runner, dict(zip((s.key() for s in specs), results))


class TestDifferential:
    def test_parallel_identical_to_serial_across_matrix(self):
        serial = run_serial(MATRIX)
        runner, parallel = run_parallel(MATRIX)
        assert runner.simulated == len(MATRIX)
        for spec in MATRIX:
            assert result_payload(serial[spec.key()]) == result_payload(
                parallel[spec.key()]
            ), f"parallel diverged from serial for {spec}"

    def test_crash_outcomes_identical(self):
        serial = run_serial(CRASH_SPECS)
        _, parallel = run_parallel(CRASH_SPECS)
        crashed = 0
        for spec in CRASH_SPECS:
            s, p = serial[spec.key()], parallel[spec.key()]
            assert (s.crashed, s.crash_reason) == (p.crashed, p.crash_reason)
            assert result_payload(s) == result_payload(p)
            crashed += s.crashed
        assert crashed == len(CRASH_SPECS)  # the budget is tight on purpose

    def test_run_matrix_jobs_flag_matches_serial(self):
        specs = MATRIX[:6]
        serial = run_serial(specs)
        clear_cache(disk=False)
        parallel = run_matrix(specs, config=FAST, cache=None, jobs=2)
        assert serial.keys() == parallel.keys()
        for key in serial:
            assert result_payload(serial[key]) == result_payload(parallel[key])

    def test_jobs_1_runs_serially_in_process(self):
        specs = MATRIX[:4]
        serial = run_serial(specs)
        before = execution_count()
        runner, parallel = run_parallel(specs, jobs=1)
        assert execution_count() - before == len(specs)  # no pool involved
        for spec in specs:
            assert result_payload(serial[spec.key()]) == result_payload(
                parallel[spec.key()]
            )

    def test_broken_pool_falls_back_to_serial(self, monkeypatch):
        from repro.harness import parallel as parallel_mod

        def broken_pool(*args, **kwargs):
            raise OSError("no process pool on this platform")

        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", broken_pool)
        specs = MATRIX[:4]
        serial = run_serial(specs)
        runner, parallel = run_parallel(specs, jobs=2)
        assert runner.fell_back_serial
        assert runner.simulated == len(specs)
        for spec in specs:
            assert result_payload(serial[spec.key()]) == result_payload(
                parallel[spec.key()]
            )


class TestRunnerBehaviour:
    def test_duplicates_simulate_once(self):
        spec = MATRIX[0]
        runner, _ = run_parallel([spec, spec, spec], jobs=2)
        assert runner.simulated == 1

    def test_results_align_with_input_order(self):
        specs = [MATRIX[2], MATRIX[0], MATRIX[2]]
        clear_cache(disk=False)
        results = ParallelRunner(jobs=2, cache=None).run(specs, config=FAST)
        assert [r.workload for r in results] == [s.app for s in specs]
        assert result_payload(results[0]) == result_payload(results[2])

    def test_progress_reports_every_spec(self):
        seen = []
        runner, _ = run_parallel(
            MATRIX[:5], jobs=2, progress=lambda done, total: seen.append((done, total))
        )
        assert seen[-1] == (5, 5)
        assert [d for d, _ in seen] == sorted(d for d, _ in seen)

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1
        assert ParallelRunner().jobs == default_jobs()

    def test_memo_hits_counted(self):
        specs = MATRIX[:3]
        run_matrix(specs, config=FAST, cache=None)  # populate the memo
        runner = ParallelRunner(jobs=2, cache=None)
        runner.run(specs, config=FAST)
        assert runner.memo_hits == len(specs)
        assert runner.simulated == 0

    def test_simulation_errors_propagate(self):
        from repro.errors import ReproError

        clear_cache(disk=False)
        with pytest.raises(ReproError):
            ParallelRunner(jobs=2, cache=None).run(
                [RunSpec("NO-SUCH-APP", "baseline", 0.5)]
            )


class TestWarmCacheRegeneration:
    """Acceptance: a warm disk cache makes a repeated figure regeneration
    perform zero new simulations."""

    def test_fig3_regeneration_hits_only_the_disk_cache(self):
        apps = ["STN", "NW"]
        cache = cache_mod.get_active_cache()  # per-test tmp dir (conftest)
        assert cache is not None

        figures.fig3(apps=apps, scale=0.25, jobs=2)
        cold_stores = cache.stores
        assert cold_stores == len(apps) * 3  # baseline/random/lru-20 each

        # A "new session": the in-process memo is gone, the disk survives.
        clear_cache(disk=False)
        hits_before, misses_before = cache.hits, cache.misses
        executed_before = execution_count()
        second = figures.fig3(apps=apps, scale=0.25, jobs=2)

        assert cache.stores == cold_stores  # zero new simulations stored
        assert cache.misses == misses_before  # every lookup hit
        assert execution_count() == executed_before  # none run in-process
        assert cache.hits - hits_before == cold_stores  # all served from disk
        assert second.series  # and the figure still materialised

    def test_sweep_reuses_disk_cache_across_sessions(self):
        from repro.analysis.sweep import capacity_sweep

        cache = cache_mod.get_active_cache()
        first = capacity_sweep("STN", "baseline", rates=(1.0, 0.5), scale=0.25)
        clear_cache(disk=False)
        misses_before, executed_before = cache.misses, execution_count()
        second = capacity_sweep("STN", "baseline", rates=(1.0, 0.5), scale=0.25)
        assert execution_count() == executed_before
        assert cache.misses == misses_before
        assert [dataclasses.asdict(p) for p in first.points] == [
            dataclasses.asdict(p) for p in second.points
        ]


class TestDuplicateCollapse:
    """Regression: duplicate-spec result collapse is order-independent.

    ``submit_batch`` collapses position-aligned ``(spec, result)`` pairs to
    a ``{key: result}`` mapping.  The old dict comprehension let zip order
    decide which occurrence survived for a duplicated key, so under
    ``keep_going`` a key that resolved to both a result and a ``None``
    could collapse to either.  ``collapse_results`` now always prefers the
    successful result.
    """

    def _result(self, spec):
        clear_cache(disk=False)
        return run_matrix([spec], config=FAST, cache=None)[spec.key()]

    def test_success_wins_regardless_of_order(self):
        from repro.harness.experiment import collapse_results

        spec = MATRIX[0]
        result = self._result(spec)
        forward = collapse_results([spec, spec], [result, None])
        backward = collapse_results([spec, spec], [None, result])
        assert forward[spec.key()] is result
        assert backward[spec.key()] is result
        assert forward == backward

    def test_all_failed_occurrences_stay_none(self):
        from repro.harness.experiment import collapse_results

        spec = MATRIX[0]
        assert collapse_results([spec, spec], [None, None]) == {
            spec.key(): None
        }

    def test_distinct_keys_unaffected(self):
        from repro.harness.experiment import collapse_results

        a, b = MATRIX[0], MATRIX[2]
        ra = self._result(a)
        out = collapse_results([a, b, a], [ra, None, None])
        assert out == {a.key(): ra, b.key(): None}

    def test_duplicate_specs_serial_parallel_parity(self):
        from repro.harness.experiment import submit_batch

        spec = MATRIX[0]
        batch = [spec, spec, spec]
        clear_cache(disk=False)
        serial, serial_stats = submit_batch(
            batch, config=FAST, use_cache=False, jobs=1
        )
        clear_cache(disk=False)
        parallel, parallel_stats = submit_batch(
            batch, config=FAST, use_cache=False, jobs=2
        )
        assert serial_stats.simulated == parallel_stats.simulated == 1
        assert result_payload(serial[spec.key()]) == result_payload(
            parallel[spec.key()]
        )
