"""Shootout artifact tests (repro.harness.shootout + the CLI surface).

The shootout is the registry's first-class proof artifact: the full
policy x prefetcher cross product, enumerated (never hand-listed), run as
one batch, ranked against the baseline setup.  The cache contract is the
sharp edge: canonical setup names mean a shootout shares cache entries
with every other harness entry point, so a warm re-run must perform zero
new simulations (asserted in CI too).
"""

from __future__ import annotations

import json

import pytest

from repro import registry
from repro.cli import main
from repro.harness.shootout import (
    BASELINE_SETUP,
    run_shootout,
    shootout_setups,
    shootout_table,
)

#: STN at scale 0.1 keeps the full 42-combo matrix under a second.
APP, RATE, SCALE = "STN", 0.5, 0.1


@pytest.fixture(scope="module")
def result():
    return run_shootout(APP, rate=RATE, scale=SCALE)


class TestEnumeration:
    def test_full_cross_product(self):
        setups = shootout_setups()
        expected = len(registry.names("policy")) * len(
            registry.names("prefetcher")
        )
        assert len(setups) == expected
        assert setups == sorted(setups)

    def test_pairs_fold_into_canonical_names(self):
        setups = shootout_setups()
        # Registered setups appear under their names, not pair spellings…
        for named in ("baseline", "cppe", "ngram", "tree"):
            assert named in setups
        assert "lru+locality" not in setups
        assert "mhpe+pattern-s2" not in setups
        # …and unregistered combos appear as pair names.
        assert "random+tree" in setups


class TestRunShootout:
    def test_covers_every_combo(self, result):
        assert result.combos == len(shootout_setups())
        assert result.new_simulations + result.cached == result.combos
        assert not result.failed

    def test_rows_ranked_by_speedup(self, result):
        speedups = [row[3] for row in result.table.rows]
        completed = [s for s in speedups if s is not None]
        assert completed == sorted(completed, reverse=True)
        # Crashed/unranked rows sink to the bottom.
        tail = speedups[len(completed):]
        assert all(s is None for s in tail)

    def test_baseline_speedup_is_one(self, result):
        rows = {row[0]: row for row in result.table.rows}
        assert rows[BASELINE_SETUP][3] == pytest.approx(1.0)

    def test_row_components_match_registry(self, result):
        for row in result.table.rows:
            setup, policy, prefetcher = row[0], row[1], row[2]
            assert registry.setup_components(setup) == (policy, prefetcher)

    def test_render_and_payload(self, result):
        text = result.render()
        assert "shootout" in text
        assert BASELINE_SETUP in text
        payload = result.to_dict()
        assert payload["combos"] == result.combos
        assert payload["app"] == APP
        assert len(payload["rows"]) == result.combos


class TestCacheContract:
    def test_warm_rerun_performs_zero_new_simulations(self):
        cold = run_shootout(APP, rate=RATE, scale=SCALE)
        assert cold.new_simulations > 0
        warm = run_shootout(APP, rate=RATE, scale=SCALE)
        assert warm.new_simulations == 0
        assert warm.cached == warm.combos
        assert [r[0] for r in warm.table.rows] == [
            r[0] for r in cold.table.rows
        ]

    def test_named_setup_runs_share_cache_entries(self):
        from repro.harness.experiment import RunSpec, run_one

        # A prior named-setup run must be a cache hit for the shootout.
        for setup in ("baseline", "cppe"):
            run_one(RunSpec(APP, setup, RATE, scale=SCALE))
        result = run_shootout(APP, rate=RATE, scale=SCALE)
        assert result.cached >= 2


class TestShootoutTable:
    def test_regenerator_surface(self):
        table = shootout_table(apps=[APP], rate=RATE, scale=SCALE)
        assert table.name == "shootout"
        assert table.rows
        assert table.headers[0] == "setup"


class TestCli:
    def test_shootout_command(self, capsys):
        assert main(
            ["shootout", APP, "--rate", str(RATE), "--scale", str(SCALE)]
        ) == 0
        out = capsys.readouterr().out
        assert BASELINE_SETUP in out
        assert "ngram" in out

    def test_shootout_json(self, capsys):
        assert main(
            ["shootout", APP, "--rate", str(RATE), "--scale", str(SCALE),
             "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["combos"] == len(shootout_setups())
        assert payload["new_simulations"] + payload["cached"] == (
            payload["combos"]
        )

    def test_shootout_rejects_bad_rate(self):
        assert main(["shootout", APP, "--rate", "1.5"]) == 2

    def test_components_list(self, capsys):
        assert main(["components", "list"]) == 0
        out = capsys.readouterr().out
        assert "ngram" in out and "policy" in out

    def test_components_list_kind_json(self, capsys):
        assert main(["components", "list", "--kind", "prefetcher",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"prefetcher"}
        names = {entry["name"] for entry in payload["prefetcher"]}
        assert "ngram" in names and "locality" in names

    def test_components_describe(self, capsys):
        assert main(["components", "describe", "prefetcher", "ngram"]) == 0
        out = capsys.readouterr().out
        assert "order" in out and "repro.prefetch.ngram" in out

    def test_components_describe_unknown(self, capsys):
        assert main(["components", "describe", "prefetcher", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "locality" in err  # lists the valid choices
