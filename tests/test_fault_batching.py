"""UVM fault-buffer batch servicing (UVMConfig.fault_batch_size)."""

import numpy as np
import pytest

from repro.config import SimConfig, SMConfig, TranslationConfig, UVMConfig
from repro.engine.events import EventQueue
from repro.engine.simulator import Simulator
from repro.engine.stats import SimStats
from repro.errors import ConfigError
from repro.memsim.fault import FarFault
from repro.memsim.gmmu import GMMU
from repro.policies.lru import LRUPolicy
from repro.prefetch.locality import LocalityPrefetcher

from conftest import make_simple_workload


def make_gmmu(batch, capacity=1024):
    cfg = SimConfig(uvm=UVMConfig(fault_batch_size=batch))
    events = EventQueue()
    stats = SimStats()
    gmmu = GMMU(
        config=cfg, capacity_frames=capacity, events=events, stats=stats,
        policy=LRUPolicy(), prefetcher=LocalityPrefetcher("continue"),
    )
    return gmmu, events, stats


def issue(gmmu, vpn, time=0):
    resolved = []
    gmmu.handle_fault(
        FarFault(vpn=vpn, sm_id=0, time=time, is_write=False,
                 on_resolve=lambda t: resolved.append(t))
    )
    return resolved


class TestBatching:
    def test_distinct_chunks_batch_after_first_dispatch(self):
        # The first fault dispatches on an empty buffer; the remaining
        # three accumulate while it is in flight and drain as ONE batched
        # op (4 ops without batching).
        gmmu, events, stats = make_gmmu(batch=4)
        for chunk in range(4):
            issue(gmmu, chunk * 16)
        events.run()
        assert stats.fault_service_ops == 2
        assert stats.pages_migrated == 64
        for chunk in range(4):
            assert gmmu.is_resident(chunk * 16)

    def test_batch_of_one_reproduces_paper_behaviour(self):
        gmmu, events, stats = make_gmmu(batch=1)
        for chunk in range(4):
            issue(gmmu, chunk * 16)
        events.run()
        assert stats.fault_service_ops == 4

    def test_batch_bounded_by_pending_queue(self):
        gmmu, events, stats = make_gmmu(batch=8)
        issue(gmmu, 0)  # alone in the buffer
        events.run()
        assert stats.fault_service_ops == 1
        assert stats.pages_migrated == 16

    def test_batch_capped_at_half_capacity(self):
        gmmu, events, stats = make_gmmu(batch=16, capacity=64)
        for chunk in range(8):
            issue(gmmu, chunk * 16)
        events.run()
        # One op may migrate at most capacity/2 = 32 pages = 2 chunks.
        assert stats.fault_service_ops >= 4

    def test_all_faults_resolve(self):
        gmmu, events, stats = make_gmmu(batch=4)
        resolved = [issue(gmmu, chunk * 16) for chunk in range(6)]
        events.run()
        gmmu.drain_check()
        assert all(r for r in resolved)

    def test_same_chunk_fault_merges_into_in_flight(self):
        gmmu, events, stats = make_gmmu(batch=4)
        issue(gmmu, 0)     # dispatches immediately
        issue(gmmu, 5)     # same chunk: merges into the in-flight op
        issue(gmmu, 16)    # second chunk: queued, drained by a second op
        events.run()
        assert stats.fault_service_ops == 2
        assert stats.merged_faults == 1
        assert stats.pages_migrated == 32

    def test_invalid_batch_size(self):
        with pytest.raises(ConfigError):
            UVMConfig(fault_batch_size=0)


class TestBatchingEndToEnd:
    def test_batching_reduces_services_and_runtime(self):
        def run(batch):
            cfg = SimConfig(
                sm=SMConfig(num_sms=8),
                uvm=UVMConfig(fault_batch_size=batch),
                translation=TranslationConfig(enabled=False),
            )
            wl = make_simple_workload(
                footprint=2048, accesses=np.arange(2048),
                distribution="block", pattern_type="I",
            )
            return Simulator(wl, oversubscription=None, config=cfg).run()

        single = run(1)
        batched = run(4)
        assert batched.stats.fault_service_ops < single.stats.fault_service_ops
        assert batched.total_cycles < single.total_cycles
        # Same pages migrated either way.
        assert batched.stats.pages_migrated == single.stats.pages_migrated
