"""PCIe transfer model (repro.memsim.pcie)."""

import pytest

from repro.memsim.pcie import PCIeLink


class TestTransfers:
    def test_byte_accounting_both_directions(self):
        link = PCIeLink()
        link.transfer_to_device(16)
        link.transfer_to_host(4)
        assert link.bytes_to_device == 16 * 4096
        assert link.bytes_to_host == 4 * 4096

    def test_transfer_time_scales_with_pages(self):
        link = PCIeLink()
        assert link.transfer_to_device(10) == 10 * link.cycles_per_page

    def test_zero_pages(self):
        link = PCIeLink()
        assert link.transfer_to_device(0) == 0
        assert link.bytes_to_device == 0

    def test_table1_bandwidth_cycle_cost(self):
        # 4 KB at 16 GB/s and 1.4 GHz = 358 cycles.
        assert PCIeLink(16.0, 1.4e9, 4096).cycles_per_page == 358

    def test_doubling_bandwidth_halves_cycles(self):
        slow = PCIeLink(16.0).cycles_per_page
        fast = PCIeLink(32.0).cycles_per_page
        assert fast == pytest.approx(slow / 2, abs=1)

    def test_duplex_directions_independent(self):
        link = PCIeLink()
        link.transfer_to_device(5)
        assert link.bytes_to_host == 0
