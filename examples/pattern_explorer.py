#!/usr/bin/env python3
"""Pattern explorer: watch MHPE classify an application at runtime.

Runs one application under full CPPE and prints the per-interval telemetry
MHPE adapts on — untouch level, wrong evictions, eviction strategy, forward
distance — plus the pattern buffer's activity.  This is the view behind
Tables III/IV and Algorithm 1.

Run:  python examples/pattern_explorer.py [APP] [RATE]
      python examples/pattern_explorer.py NW 0.5
"""

import sys

from repro import Simulator, make_workload
from repro.analysis.classify import classify_untouch_category, untouch_profile
from repro.core import CPPE
from repro.harness.report import render_table


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "NW"
    rate = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5

    workload = make_workload(app)
    pair = CPPE.create()
    result = Simulator(
        workload, policy=pair.policy, prefetcher=pair.prefetcher,
        oversubscription=rate,
    ).run()

    active = [r for r in result.stats.intervals if r.chunks_evicted > 0]
    rows = [
        [r.index, r.untouch_total, r.wrong_evictions, r.strategy,
         r.forward_distance, r.faults]
        for r in active[:20]
    ]
    print(
        render_table(
            ["interval", "untouch", "wrong evic", "strategy",
             "fwd distance", "faults"],
            rows,
            title=f"{app} at {rate:.0%}: first {len(rows)} intervals with "
                  "eviction activity (one interval = 64 migrated pages)",
        )
    )

    profile = untouch_profile(result)
    s = result.stats
    print(f"\nclassification: {classify_untouch_category(profile)} "
          f"(max first-4 = {profile.max_first_four}, "
          f"total first-4 = {profile.total_first_four})")
    print(f"final strategy: {s.final_strategy}"
          + (f" (switched at cycle {s.strategy_switch_time:,})"
             if s.strategy_switch_time else " (never switched)"))
    print(f"forward distance history: {s.forward_distance_history}")
    print(f"pattern buffer: {s.pattern_inserts} inserts, "
          f"{s.pattern_hits} hits, {s.pattern_mismatches} mismatches, "
          f"peak {s.pattern_buffer_peak} entries")
    if s.pattern_hits:
        print(f"pattern prefetches avoided migrating "
              f"{16 * (s.pattern_hits + s.pattern_mismatches) - s.pages_migrated:,} "
              "pages versus always-whole-chunk (rough estimate)")


if __name__ == "__main__":
    main()
