#!/usr/bin/env python3
"""Oversubscription sweep: how runtime degrades as memory shrinks.

For a handful of representative applications, sweeps the device memory
capacity from 100% of the footprint down to 40% and prints the slowdown of
the baseline and of CPPE relative to the unconstrained run — the experiment
behind the paper's choice of the 75% / 50% operating points.

Run:  python examples/oversubscription_sweep.py [APP ...]
"""

import sys

from repro import Simulator, make_workload
from repro.core import CPPE
from repro.policies import LRUPolicy
from repro.prefetch import LocalityPrefetcher

RATES = [1.0, 0.9, 0.75, 0.6, 0.5, 0.4]
DEFAULT_APPS = ["HSD", "NW", "B+T"]


def run(app: str, rate: float, use_cppe: bool) -> int:
    workload = make_workload(app)
    if use_cppe:
        pair = CPPE.create()
        policy, prefetcher = pair.policy, pair.prefetcher
    else:
        policy, prefetcher = LRUPolicy(), LocalityPrefetcher("continue")
    result = Simulator(
        workload,
        policy=policy,
        prefetcher=prefetcher,
        oversubscription=None if rate >= 1.0 else rate,
    ).run()
    return result.total_cycles


def main() -> None:
    apps = sys.argv[1:] or DEFAULT_APPS
    header = "rate  " + "".join(
        f"{app + ' base':>12}{app + ' cppe':>12}" for app in apps
    )
    print(header)
    print("-" * len(header))
    unconstrained = {
        (app, mode): run(app, 1.0, mode) for app in apps for mode in (False, True)
    }
    for rate in RATES:
        cells = []
        for app in apps:
            for mode in (False, True):
                cycles = run(app, rate, mode)
                slowdown = cycles / unconstrained[(app, mode)]
                cells.append(f"{slowdown:>11.2f}x")
        print(f"{rate:>4.0%}  " + "".join(cells))
    print(
        "\nSlowdown relative to unconstrained memory (1.00x = no penalty)."
        "\nShape to expect: the baseline's slowdown explodes for the"
        "\nthrashing app (HSD) as capacity crosses below the working set,"
        "\nwhile CPPE degrades gracefully; the LRU-friendly app (B+T) is"
        "\nsimilar under both."
    )


if __name__ == "__main__":
    main()
