#!/usr/bin/env python3
"""Oversubscription sweep: fixed grid vs adaptive convergence-driven.

For a handful of representative applications, locates the working-set
knee — the capacity rate where the baseline's slowdown crosses 1.5x —
two ways and compares the bill:

* the fixed 7-point grid (``analysis.sweep.DEFAULT_RATES``), the
  experiment behind the paper's choice of the 75% / 50% operating points;
* the adaptive loop (``repro.analysis.adaptive``), which seeds 3 points,
  fits a monotone model of slowdown vs. rate, and only simulates where
  the curve bends, until successive fits agree.

Both flavours share the experiment engine and its result cache, so the
interesting number is *sampled points*: the adaptive sweep resolves the
same knee — continuously, not to the grid's 0.1 — from fewer
simulations (40%+ fewer where the knee sits well below full capacity).

Run:  python examples/oversubscription_sweep.py [APP ...]
"""

import sys

from repro.analysis import AdaptiveSweep, capacity_sweep, find_knee
from repro.analysis.sweep import DEFAULT_RATES

DEFAULT_APPS = ["SRD", "STN", "HSD"]
SCALE = 0.25  # quarter of the quarter-footprint suite: seconds per app
THRESHOLD = 1.5


def describe(app: str) -> None:
    fixed = capacity_sweep(app, "baseline", rates=DEFAULT_RATES, scale=SCALE)
    fixed_knee = find_knee(fixed, THRESHOLD)

    driver = AdaptiveSweep(app, "baseline", scale=SCALE)
    adaptive = driver.run()
    adaptive_knee = find_knee(adaptive, THRESHOLD)
    model_knee = driver.knee_estimate(THRESHOLD)

    print(f"\n== {app} (baseline, scale {SCALE:g}) ==")
    print(f"  fixed grid : {fixed.simulations()} simulations, "
          f"knee {'none' if fixed_knee is None else f'{fixed_knee:.0%}'}")
    status = "converged" if adaptive.converged else "budget exhausted"
    print(f"  adaptive   : {adaptive.simulations()} simulations "
          f"({status} after {adaptive.rounds} rounds), "
          f"knee {'none' if adaptive_knee is None else f'{adaptive_knee:.0%}'}"
          + ("" if model_knee is None else f", model knee {model_knee:.1%}"))
    saved = 1.0 - adaptive.simulations() / fixed.simulations()
    print(f"  saved      : {saved:.0%} of the simulations")
    print("  rates sampled adaptively: "
          + ", ".join(f"{p.rate:.1%}" for p in adaptive.points))


def main() -> None:
    apps = sys.argv[1:] or DEFAULT_APPS
    print("Working-set knee (slowdown >= "
          f"{THRESHOLD}x): fixed {len(DEFAULT_RATES)}-point grid vs "
          "adaptive simulate->fit->propose loop.")
    for app in apps:
        describe(app)
    print(
        "\nShape to expect: thrashing apps (SRD, STN) have a knee the"
        "\nadaptive sweep brackets in 4-6 simulations with a continuous"
        "\nmodel estimate; a streaming/LRU-friendly app degrades gently"
        "\nand may never cross the threshold, in which case the adaptive"
        "\nsweep stops as soon as successive fits agree the curve is flat."
    )


if __name__ == "__main__":
    main()
