#!/usr/bin/env python3
"""Bring your own trace: simulate a custom access pattern.

Shows the lowest-level public API: build a :class:`repro.Workload` from any
numpy array of page indices (here, a blocked matrix transpose — a pattern
not in the paper's suite), pick a policy/prefetcher pair, and simulate.

This is how you would evaluate CPPE on traces captured from a real
application (e.g. via CUPTI or a binary instrumentation tool): dump one
page index per memory operation and feed the array in.

Run:  python examples/custom_workload.py
"""

import numpy as np

from repro import Simulator, Workload
from repro.core import CPPE
from repro.policies import LRUPolicy, ReservedLRUPolicy
from repro.prefetch import LocalityPrefetcher


def transpose_trace(n_tiles: int = 16, tile_pages: int = 32) -> np.ndarray:
    """Page trace of a blocked transpose: read tile (i, j), write tile (j, i).

    Column-order tile reads give large strides — a chunk-hostile pattern.
    """
    footprint = n_tiles * n_tiles * tile_pages
    parts = []
    for i in range(n_tiles):
        for j in range(n_tiles):
            read_base = (i * n_tiles + j) * tile_pages
            write_base = (j * n_tiles + i) * tile_pages
            parts.append(np.arange(read_base, read_base + tile_pages))
            parts.append(np.arange(write_base, write_base + tile_pages))
    trace = np.concatenate(parts).astype(np.int64)
    assert trace.max() < footprint
    return trace


def main() -> None:
    trace = transpose_trace()
    footprint = int(trace.max()) + 1
    print(f"custom workload: blocked transpose, {footprint} pages, "
          f"{trace.size} accesses\n")

    def simulate(policy, prefetcher, label):
        workload = Workload(
            name="transpose",
            pattern_type="custom",
            footprint_pages=footprint,
            accesses=trace.copy(),
        )
        result = Simulator(
            workload, policy=policy, prefetcher=prefetcher, oversubscription=0.5
        ).run()
        print(f"{label:<28} {result.total_cycles:>14,} cycles  "
              f"{result.stats.far_faults:>7,} faults  "
              f"{result.stats.chunks_evicted:>6,} evictions")
        return result

    base = simulate(LRUPolicy(), LocalityPrefetcher("continue"),
                    "LRU + naive prefetch")
    simulate(ReservedLRUPolicy(0.2), LocalityPrefetcher("continue"),
             "reserved LRU-20%")
    pair = CPPE.create()
    cppe = simulate(pair.policy, pair.prefetcher, "CPPE")
    print(f"\nCPPE speedup over baseline: {cppe.speedup_over(base):.2f}x")


if __name__ == "__main__":
    main()
