#!/usr/bin/env python3
"""Quickstart: run one application under the baseline and under CPPE.

Simulates srad_v2 (SRD) — a thrashing-pattern Rodinia kernel — at 50%
memory oversubscription twice:

* the state-of-the-art software baseline: LRU pre-eviction + a sequential-
  local prefetcher that keeps prefetching whole 64 KB chunks when memory
  is full;
* CPPE: MHPE eviction coordinated with the access pattern-aware prefetcher.

Then prints the headline numbers the paper's evaluation is built from.

Run:  python examples/quickstart.py
"""

from repro import Simulator, make_workload
from repro.core import CPPE
from repro.policies import LRUPolicy
from repro.prefetch import LocalityPrefetcher
from repro.units import cycles_to_ms


def main() -> None:
    app = "SRD"
    rate = 0.5

    workload = make_workload(app)
    print(f"workload: {workload.name} ({workload.description})")
    print(f"  footprint: {workload.footprint_pages} pages "
          f"({workload.footprint_chunks} chunks), "
          f"{workload.num_accesses} accesses, "
          f"memory capacity: {rate:.0%} of footprint\n")

    baseline = Simulator(
        workload,
        policy=LRUPolicy(),
        prefetcher=LocalityPrefetcher("continue"),
        oversubscription=rate,
    ).run()

    pair = CPPE.create()  # MHPE + pattern-aware prefetcher (Scheme-2)
    cppe = Simulator(
        make_workload(app),
        policy=pair.policy,
        prefetcher=pair.prefetcher,
        oversubscription=rate,
    ).run()

    for name, result in (("baseline (LRU + naive prefetch)", baseline),
                         ("CPPE (MHPE + pattern prefetch)", cppe)):
        s = result.stats
        print(f"{name}:")
        print(f"  runtime            {result.total_cycles:>12,} cycles "
              f"({cycles_to_ms(result.total_cycles):.2f} ms simulated)")
        print(f"  far faults         {s.far_faults:>12,}")
        print(f"  fault service ops  {s.fault_service_ops:>12,}")
        print(f"  pages migrated     {s.pages_migrated:>12,}")
        print(f"  chunks evicted     {s.chunks_evicted:>12,}")
        print(f"  prefetch accuracy  {s.prefetch_accuracy:>12.1%}")
        if s.final_strategy:
            print(f"  eviction strategy  {s.final_strategy:>12}")
        print()

    print(f"CPPE speedup over baseline: {cppe.speedup_over(baseline):.2f}x")
    print("(paper, Fig. 8: Type IV applications gain the most from MHPE's "
          "MRU strategy)")


if __name__ == "__main__":
    main()
