#!/usr/bin/env python3
"""Policy shootout: every eviction policy x prefetcher pairing on one app.

Runs all named setups of the harness (LRU, Random, reserved LRU, HPE, MHPE;
no-prefetch, locality, stop-on-full, tree, pattern-aware) on a single
application and ranks them — the expanded version of the paper's Figs. 3
and 9 for one workload.

Run:  python examples/policy_shootout.py [APP] [RATE]
      python examples/policy_shootout.py MVT 0.5
"""

import sys

from repro.harness.baselines import SETUPS
from repro.harness.experiment import RunSpec, run_one
from repro.harness.report import render_table


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "SRD"
    rate = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5

    baseline = run_one(RunSpec(app, "baseline", rate))
    rows = []
    for setup in sorted(SETUPS):
        result = run_one(RunSpec(app, setup, rate))
        rows.append(
            [
                setup,
                result.policy,
                result.prefetcher,
                result.speedup_over(baseline),
                result.stats.far_faults,
                result.stats.chunks_evicted,
                f"{result.stats.prefetch_accuracy:.0%}",
            ]
        )
    rows.sort(key=lambda r: -r[3])
    print(
        render_table(
            ["setup", "policy", "prefetcher", "speedup", "faults",
             "evictions", "prefetch acc"],
            rows,
            title=f"{app} at {rate:.0%} oversubscription "
                  f"(speedup vs baseline = LRU + naive locality prefetch)",
        )
    )


if __name__ == "__main__":
    main()
