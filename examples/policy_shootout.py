#!/usr/bin/env python3
"""Policy shootout: every eviction policy x prefetcher pairing on one app.

Thin wrapper over :func:`repro.harness.shootout.run_shootout` — the combos
are enumerated from the component registries (``repro components list``),
run as one batch through the experiment engine (memo + disk cache), and
ranked by speedup over the baseline setup.  The same artifact is available
as ``python -m repro shootout [APP] [--rate R]``, which adds ``--jobs``,
``--json`` and cache controls.

Run:  python examples/policy_shootout.py [APP] [RATE]
      python examples/policy_shootout.py MVT 0.5
"""

import sys

from repro.harness.shootout import run_shootout


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "SRD"
    rate = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    result = run_shootout(app, rate=rate)
    print(result.render())
    print(f"{result.combos} combos: {result.new_simulations} new "
          f"simulations, {result.cached} cached", file=sys.stderr)


if __name__ == "__main__":
    main()
